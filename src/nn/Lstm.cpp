//===- Lstm.cpp -----------------------------------------------------------===//

#include "nn/Lstm.h"

#include <cassert>

using namespace mlirrl;
using namespace mlirrl::nn;

LstmCell::LstmCell(unsigned In, unsigned Hidden, Rng &Rng)
    : Hidden(Hidden), InputGate(In + Hidden, Hidden, Rng),
      ForgetGate(In + Hidden, Hidden, Rng), CellGate(In + Hidden, Hidden, Rng),
      OutputGate(In + Hidden, Hidden, Rng) {}

LstmCell::State LstmCell::initialState() const {
  return State{Tensor::zeros(1, Hidden), Tensor::zeros(1, Hidden)};
}

LstmCell::State LstmCell::step(const Tensor &X, const State &Prev) const {
  // The concatenated input is built once and drives all four gates; each
  // gate is a single fused linear node (Linear::forward) on the shared
  // blocked-GEMM path.
  Tensor XH = concatCols(X, Prev.H);
  Tensor I = sigmoidOp(InputGate.forward(XH));
  Tensor F = sigmoidOp(ForgetGate.forward(XH));
  Tensor G = tanhOp(CellGate.forward(XH));
  Tensor O = sigmoidOp(OutputGate.forward(XH));
  Tensor C = add(hadamard(F, Prev.C), hadamard(I, G));
  Tensor H = hadamard(O, tanhOp(C));
  return State{H, C};
}

Tensor LstmCell::runSequence(const std::vector<Tensor> &Sequence) const {
  assert(!Sequence.empty() && "empty LSTM sequence");
  State S = initialState();
  for (const Tensor &X : Sequence)
    S = step(X, S);
  return S.H;
}

std::vector<Tensor> LstmCell::parameters() const {
  std::vector<Tensor> Params;
  for (const Linear *Gate : {&InputGate, &ForgetGate, &CellGate, &OutputGate})
    for (const Tensor &P : Gate->parameters())
      Params.push_back(P);
  return Params;
}
