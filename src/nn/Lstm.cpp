//===- Lstm.cpp -----------------------------------------------------------===//

#include "nn/Lstm.h"

#include <cassert>

using namespace mlirrl;
using namespace mlirrl::nn;

LstmCell::LstmCell(unsigned In, unsigned Hidden, Rng &Rng)
    : Hidden(Hidden), InputGate(In + Hidden, Hidden, Rng),
      ForgetGate(In + Hidden, Hidden, Rng), CellGate(In + Hidden, Hidden, Rng),
      OutputGate(In + Hidden, Hidden, Rng) {}

LstmCell::State LstmCell::initialState(unsigned BatchRows) const {
  return State{Tensor::zeros(BatchRows, Hidden),
               Tensor::zeros(BatchRows, Hidden)};
}

LstmCell::State LstmCell::step(const Tensor &X, const State &Prev) const {
  // Each gate is one fused split-linear node over (x, h): bitwise the
  // concatenated product, but backward never computes the gradient of
  // the (non-trainable, mostly-zero) feature input -- only dH, which is
  // Hidden columns instead of In + Hidden.
  Tensor I = sigmoidOp(InputGate.forwardSplit(X, Prev.H));
  Tensor F = sigmoidOp(ForgetGate.forwardSplit(X, Prev.H));
  Tensor G = tanhOp(CellGate.forwardSplit(X, Prev.H));
  Tensor O = sigmoidOp(OutputGate.forwardSplit(X, Prev.H));
  Tensor C = add(hadamard(F, Prev.C), hadamard(I, G));
  Tensor H = hadamard(O, tanhOp(C));
  return State{H, C};
}

LstmCell::State
LstmCell::stepSparse(const std::shared_ptr<const SparseRows> &X,
                     const State &Prev) const {
  Tensor I = sigmoidOp(linearSplitSparse(X, Prev.H, InputGate.weight(),
                                         InputGate.bias()));
  Tensor F = sigmoidOp(linearSplitSparse(X, Prev.H, ForgetGate.weight(),
                                         ForgetGate.bias()));
  Tensor G = tanhOp(linearSplitSparse(X, Prev.H, CellGate.weight(),
                                      CellGate.bias()));
  Tensor O = sigmoidOp(linearSplitSparse(X, Prev.H, OutputGate.weight(),
                                         OutputGate.bias()));
  Tensor C = add(hadamard(F, Prev.C), hadamard(I, G));
  Tensor H = hadamard(O, tanhOp(C));
  return State{H, C};
}

Tensor LstmCell::runSequence(const std::vector<Tensor> &Sequence) const {
  assert(!Sequence.empty() && "empty LSTM sequence");
  State S = initialState(Sequence.front().rows());
  for (const Tensor &X : Sequence)
    S = step(X, S);
  return S.H;
}

Tensor LstmCell::runSequenceSparse(
    const std::vector<std::shared_ptr<const SparseRows>> &Sequence) const {
  assert(!Sequence.empty() && "empty LSTM sequence");
  State S = initialState(Sequence.front()->Rows);
  for (const std::shared_ptr<const SparseRows> &X : Sequence)
    S = stepSparse(X, S);
  return S.H;
}

std::vector<Tensor> LstmCell::parameters() const {
  std::vector<Tensor> Params;
  for (const Linear *Gate : {&InputGate, &ForgetGate, &CellGate, &OutputGate})
    for (const Tensor &P : Gate->parameters())
      Params.push_back(P);
  return Params;
}
