//===- Distributions.cpp --------------------------------------------------===//

#include "nn/Distributions.h"

#include "support/Error.h"

#include <cassert>
#include <cmath>

using namespace mlirrl;
using namespace mlirrl::nn;

BatchedMaskedCategorical::BatchedMaskedCategorical(Tensor Logits, Tensor Mask)
    : Logits(std::move(Logits)), Mask(std::move(Mask)) {
  LogProbs = logSoftmaxRows(this->Logits, this->Mask);
}

std::vector<double>
BatchedMaskedCategorical::probabilitiesRow(unsigned Row) const {
  assert(Row < batchSize() && "row out of range");
#ifndef NDEBUG
  // Sampling (or argmaxing) a fully-masked row would silently pick an
  // invalid action: logSoftmaxRows turns the all-(-inf) row into a
  // uniform distribution. Such rows exist legitimately in mixed
  // batches (inactive heads) but must never be drawn from.
  if (Mask.valid()) {
    bool AnyValid = false;
    for (unsigned I = 0; I < Mask.cols(); ++I)
      AnyValid |= Mask.at(Row, I) != 0.0;
    assert(AnyValid && "drawing from a fully-masked row");
  }
#endif
  std::vector<double> Probs(LogProbs.cols());
  for (unsigned I = 0; I < LogProbs.cols(); ++I)
    Probs[I] = std::exp(LogProbs.at(Row, I));
  return Probs;
}

unsigned BatchedMaskedCategorical::sampleRow(unsigned Row, Rng &Rng) const {
  return static_cast<unsigned>(Rng.sampleWeighted(probabilitiesRow(Row)));
}

unsigned BatchedMaskedCategorical::argmaxRow(unsigned Row) const {
  std::vector<double> Probs = probabilitiesRow(Row);
  unsigned Best = 0;
  double BestValue = -1.0;
  for (unsigned I = 0; I < Probs.size(); ++I) {
    if (Probs[I] > BestValue) {
      BestValue = Probs[I];
      Best = I;
    }
  }
  return Best;
}

double BatchedMaskedCategorical::logProbValue(unsigned Row,
                                              unsigned Index) const {
  assert(!isMasked(Row, Index) && "log-prob of a masked action");
  return LogProbs.at(Row, Index);
}

Tensor BatchedMaskedCategorical::logProbRows(const std::vector<int> &Cols) const {
  return pickPerRow(LogProbs, Cols);
}

Tensor BatchedMaskedCategorical::entropyRows() const {
  return entropyRowsOfLogits(Logits, Mask);
}

bool BatchedMaskedCategorical::isMasked(unsigned Row, unsigned Index) const {
  assert(Row < batchSize() && Index < Logits.cols() && "index out of range");
  return Mask.valid() && Mask.at(Row, Index) == 0.0;
}

MaskedCategorical::MaskedCategorical(Tensor Logits, Tensor Mask)
    : Batch([&] {
        assert(Logits.rows() == 1 && "logits must be a single row");
#ifndef NDEBUG
        if (Mask.valid()) {
          bool AnyValid = false;
          for (double V : Mask.data())
            AnyValid |= V != 0.0;
          assert(AnyValid && "mask excludes every action");
        }
#endif
        return BatchedMaskedCategorical(std::move(Logits), std::move(Mask));
      }()) {}

Tensor MaskedCategorical::logProb(unsigned Index) const {
  assert(!isMasked(Index) && "log-prob of a masked action");
  return Batch.logProbRows({static_cast<int>(Index)});
}
