//===- Distributions.cpp --------------------------------------------------===//

#include "nn/Distributions.h"

#include "support/Error.h"

#include <cassert>
#include <cmath>

using namespace mlirrl;
using namespace mlirrl::nn;

MaskedCategorical::MaskedCategorical(Tensor Logits, Tensor Mask)
    : Logits(std::move(Logits)), Mask(std::move(Mask)) {
  assert(this->Logits.rows() == 1 && "logits must be a single row");
#ifndef NDEBUG
  if (this->Mask.valid()) {
    bool AnyValid = false;
    for (double V : this->Mask.data())
      AnyValid |= V != 0.0;
    assert(AnyValid && "mask excludes every action");
  }
#endif
  LogProbs = logSoftmaxRows(this->Logits, this->Mask);
}

unsigned MaskedCategorical::sample(Rng &Rng) const {
  std::vector<double> Probs = probabilities();
  return static_cast<unsigned>(Rng.sampleWeighted(Probs));
}

unsigned MaskedCategorical::argmax() const {
  unsigned Best = 0;
  double BestValue = -1.0;
  std::vector<double> Probs = probabilities();
  for (unsigned I = 0; I < Probs.size(); ++I) {
    if (Probs[I] > BestValue) {
      BestValue = Probs[I];
      Best = I;
    }
  }
  return Best;
}

Tensor MaskedCategorical::logProb(unsigned Index) const {
  assert(!isMasked(Index) && "log-prob of a masked action");
  return pick(LogProbs, 0, Index);
}

Tensor MaskedCategorical::entropy() const {
  return entropyOfLogits(Logits, Mask);
}

std::vector<double> MaskedCategorical::probabilities() const {
  std::vector<double> Probs(LogProbs.cols());
  for (unsigned I = 0; I < LogProbs.cols(); ++I)
    Probs[I] = std::exp(LogProbs.at(0, I));
  return Probs;
}

bool MaskedCategorical::isMasked(unsigned Index) const {
  assert(Index < Logits.cols() && "index out of range");
  return Mask.valid() && Mask.at(0, Index) == 0.0;
}
