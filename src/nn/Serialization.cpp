//===- Serialization.cpp --------------------------------------------------===//

#include "nn/Serialization.h"

#include <cstdio>

using namespace mlirrl;
using namespace mlirrl::nn;

bool nn::saveParameters(const std::vector<Tensor> &Params,
                        const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return false;
  std::fprintf(File, "mlirrl-params %zu\n", Params.size());
  for (const Tensor &P : Params) {
    std::fprintf(File, "%u %u\n", P.rows(), P.cols());
    for (double V : P.data())
      std::fprintf(File, "%.17g\n", V);
  }
  std::fclose(File);
  return true;
}

bool nn::loadParameters(const std::vector<Tensor> &Params,
                        const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "r");
  if (!File)
    return false;
  size_t Count = 0;
  bool Ok = std::fscanf(File, "mlirrl-params %zu", &Count) == 1 &&
            Count == Params.size();
  for (const Tensor &P : Params) {
    if (!Ok)
      break;
    unsigned Rows = 0, Cols = 0;
    Ok = std::fscanf(File, "%u %u", &Rows, &Cols) == 2 && Rows == P.rows() &&
         Cols == P.cols();
    if (!Ok)
      break;
    for (double &V : P.node()->Data) {
      if (std::fscanf(File, "%lg", &V) != 1) {
        Ok = false;
        break;
      }
    }
  }
  std::fclose(File);
  return Ok;
}
