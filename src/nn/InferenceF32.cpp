//===- InferenceF32.cpp ---------------------------------------------------===//

#include "nn/InferenceF32.h"

#include "nn/Gemm.h"

#include <cassert>
#include <cmath>

using namespace mlirrl;
using namespace mlirrl::nn;

MatF32 MatF32::fromTensor(const Tensor &T) {
  MatF32 M(T.rows(), T.cols());
  const DBuffer &Src = T.data();
  for (size_t I = 0; I < Src.size(); ++I)
    M.Data[I] = static_cast<float>(Src[I]);
  return M;
}

LinearF32 LinearF32::pack(const Linear &L) {
  return LinearF32{MatF32::fromTensor(L.weight()), MatF32::fromTensor(L.bias())};
}

/// Prefills every row of \p Out with the bias row (the accumulate-into-C
/// GEMM contract then adds the product on top).
static MatF32 biasRows(unsigned Rows, const MatF32 &Bias) {
  MatF32 Out(Rows, Bias.Cols);
  for (unsigned R = 0; R < Rows; ++R)
    for (unsigned C = 0; C < Bias.Cols; ++C)
      Out.row(R)[C] = Bias.at(0, C);
  return Out;
}

namespace {

/// The float image of Ops.cpp's forwardProduct: C += A . B with the
/// same zero-skipping row path for single-row and sparse inputs.
/// Greedy inference is mostly M == 1 over ReLU activations (half
/// zeros) and the step-1 LSTM hidden state (all zeros); streaming the
/// whole dense weight panel through the blocked kernel for those rows
/// costs more bandwidth than the skipped multiplies save. The dense
/// batched fallback goes through gemmAccNN, where the packing
/// heuristic (autoPackNN) keeps these skinny-M serving shapes on the
/// streaming kernel -- packed panels only pay off at the larger
/// training shapes.
void forwardProductF32(unsigned M, unsigned N, unsigned K, const float *A,
                       const float *B, float *C) {
  auto SparseRow = [&](unsigned I) {
    const float *__restrict Ai = A + static_cast<size_t>(I) * K;
    float *__restrict Ci = C + static_cast<size_t>(I) * N;
    for (unsigned Kk = 0; Kk < K; ++Kk) {
      const float Av = Ai[Kk];
      if (Av == 0.0f)
        continue;
      const float *__restrict Bk = B + static_cast<size_t>(Kk) * N;
      for (unsigned J = 0; J < N; ++J)
        Ci[J] += Av * Bk[J];
    }
  };
  if (M == 1) {
    SparseRow(0);
    return;
  }
  size_t Nnz = 0;
  size_t Total = static_cast<size_t>(M) * K;
  for (size_t I = 0; I < Total; ++I)
    Nnz += A[I] != 0.0f;
  if (Nnz * 2 < Total) {
    for (unsigned I = 0; I < M; ++I)
      SparseRow(I);
    return;
  }
  gemmAccNN(M, N, K, A, K, B, N, C, N);
}

} // namespace

MatF32 LinearF32::forward(const MatF32 &X) const {
  assert(X.Cols == W.Rows && "linear shape mismatch");
  MatF32 Out = biasRows(X.Rows, B);
  forwardProductF32(X.Rows, W.Cols, X.Cols, X.Data.data(), W.Data.data(),
                    Out.Data.data());
  return Out;
}

MlpF32 MlpF32::pack(const Mlp &M) {
  MlpF32 Out;
  for (const Linear &L : M.layers())
    Out.Layers.push_back(LinearF32::pack(L));
  return Out;
}

MatF32 MlpF32::forward(const MatF32 &X) const {
  assert(!Layers.empty() && "empty MLP");
  MatF32 Cur = Layers.front().forward(X);
  for (size_t I = 1; I < Layers.size(); ++I) {
    for (float &V : Cur.Data)
      V = V > 0.0f ? V : 0.0f;
    Cur = Layers[I].forward(Cur);
  }
  // The stack applies ReLU after every layer (Mlp::forward's shape).
  for (float &V : Cur.Data)
    V = V > 0.0f ? V : 0.0f;
  return Cur;
}

MatF32 nn::linearSplitSparseF32(const SparseRows &X, const MatF32 &H,
                                const LinearF32 &L) {
  const unsigned F = X.Cols;                  // sparse feature width
  const unsigned G = H.Cols;                  // hidden width
  const unsigned N = L.W.Cols;                // output width
  assert(L.W.Rows == F + G && "split weight shape mismatch");
  assert(H.Rows == X.Rows && "batch size mismatch");
  MatF32 Out = biasRows(X.Rows, L.B);
  // X part: rows are ~97% zeros, so accumulate one axpy per nonzero
  // against the matching W row (the float image of forwardProduct's
  // sparse path).
  for (unsigned R = 0; R < X.Rows; ++R) {
    float *OutR = Out.row(R);
    for (const SparseRows::Entry &E : X.RowEntries[R]) {
      const float V = static_cast<float>(E.Value);
      const float *WRow = L.W.row(E.Col);
      for (unsigned C = 0; C < N; ++C)
        OutR[C] += V * WRow[C];
    }
  }
  // H part against the lower G rows of W: the density-dispatched
  // product (the step-1 hidden state is all zeros and skips outright;
  // dense batched rows take the float SIMD GEMM).
  forwardProductF32(H.Rows, N, G, H.Data.data(), L.W.row(F), Out.Data.data());
  return Out;
}

LstmCellF32 LstmCellF32::pack(const LstmCell &Cell) {
  LstmCellF32 Out;
  Out.Hidden = Cell.hiddenSize();
  Out.InputGate = LinearF32::pack(Cell.inputGate());
  Out.ForgetGate = LinearF32::pack(Cell.forgetGate());
  Out.CellGate = LinearF32::pack(Cell.cellGate());
  Out.OutputGate = LinearF32::pack(Cell.outputGate());
  return Out;
}

MatF32 LstmCellF32::runSequenceSparse(
    const std::vector<std::shared_ptr<const SparseRows>> &Sequence) const {
  assert(!Sequence.empty() && "empty LSTM sequence");
  const unsigned B = Sequence.front()->Rows;
  MatF32 Hs(B, Hidden);
  MatF32 Cs(B, Hidden);
  for (const std::shared_ptr<const SparseRows> &X : Sequence) {
    MatF32 I = linearSplitSparseF32(*X, Hs, InputGate);
    MatF32 F = linearSplitSparseF32(*X, Hs, ForgetGate);
    MatF32 G = linearSplitSparseF32(*X, Hs, CellGate);
    MatF32 O = linearSplitSparseF32(*X, Hs, OutputGate);
    for (size_t K = 0; K < Cs.Data.size(); ++K) {
      const float Iv = 1.0f / (1.0f + std::exp(-I.Data[K]));
      const float Fv = 1.0f / (1.0f + std::exp(-F.Data[K]));
      const float Gv = std::tanh(G.Data[K]);
      const float Ov = 1.0f / (1.0f + std::exp(-O.Data[K]));
      Cs.Data[K] = Fv * Cs.Data[K] + Iv * Gv;
      Hs.Data[K] = Ov * std::tanh(Cs.Data[K]);
    }
  }
  return Hs;
}
