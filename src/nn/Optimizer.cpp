//===- Optimizer.cpp ------------------------------------------------------===//

#include "nn/Optimizer.h"

#include "nn/Gemm.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cmath>

using namespace mlirrl;
using namespace mlirrl::nn;

void nn::zeroGradients(const std::vector<Tensor> &Params) {
  for (const Tensor &P : Params)
    P.zeroGrad();
}

double nn::clipGradNorm(const std::vector<Tensor> &Params, double MaxNorm) {
  double SumSq = 0.0;
  for (const Tensor &P : Params)
    for (double G : P.grad())
      SumSq += G * G;
  double Norm = std::sqrt(SumSq);
  if (Norm > MaxNorm && Norm > 0.0) {
    double Scale = MaxNorm / Norm;
    for (const Tensor &P : Params)
      for (double &G : P.node()->Grad)
        G *= Scale;
  }
  return Norm;
}

Adam::Adam(std::vector<Tensor> Params, double LearningRate, double Beta1,
           double Beta2, double Epsilon)
    : Params(std::move(Params)), LearningRate(LearningRate), Beta1(Beta1),
      Beta2(Beta2), Epsilon(Epsilon) {
  for (const Tensor &P : this->Params) {
    FirstMoment.emplace_back(P.size(), 0.0);
    SecondMoment.emplace_back(P.size(), 0.0);
  }
}

void Adam::step() {
  ++StepCount;
  double Bias1 = 1.0 - std::pow(Beta1, StepCount);
  double Bias2 = 1.0 - std::pow(Beta2, StepCount);
  auto UpdateRange = [&](size_t I, size_t J0, size_t J1) {
    TensorNode &Node = *Params[I].node();
    std::vector<double> &M = FirstMoment[I];
    std::vector<double> &V = SecondMoment[I];
    for (size_t J = J0; J < J1; ++J) {
      double G = Node.Grad[J];
      M[J] = Beta1 * M[J] + (1.0 - Beta1) * G;
      V[J] = Beta2 * V[J] + (1.0 - Beta2) * G * G;
      double MHat = M[J] / Bias1;
      double VHat = V[J] / Bias2;
      Node.Data[J] -= LearningRate * MHat / (std::sqrt(VHat) + Epsilon);
    }
  };
  // Every element updates independently, so partitioning large
  // parameters across the installed pool is bitwise-identical to the
  // serial sweep for any thread count. The moment vectors make this
  // pass memory-bound, which is what the threads buy back.
  ThreadPool *Pool = getGemmPool();
  for (size_t I = 0; I < Params.size(); ++I) {
    size_t N = Params[I].node()->Data.size();
    if (Pool && Pool->size() > 1 && N >= 32768) {
      size_t Chunk = (N + Pool->size() - 1) / Pool->size();
      Pool->parallelFor((N + Chunk - 1) / Chunk, [&](size_t C) {
        size_t J0 = C * Chunk;
        UpdateRange(I, J0, std::min(N, J0 + Chunk));
      });
    } else {
      UpdateRange(I, 0, N);
    }
  }
}

void Adam::zeroGrad() { zeroGradients(Params); }

Sgd::Sgd(std::vector<Tensor> Params, double LearningRate)
    : Params(std::move(Params)), LearningRate(LearningRate) {}

void Sgd::step() {
  for (const Tensor &P : Params) {
    TensorNode &Node = *P.node();
    for (size_t J = 0; J < Node.Data.size(); ++J)
      Node.Data[J] -= LearningRate * Node.Grad[J];
  }
}

void Sgd::zeroGrad() { zeroGradients(Params); }
