//===- Tensor.h - Autograd tensors -------------------------------*- C++-*-===//
///
/// \file
/// A small reverse-mode automatic-differentiation engine over 2-D
/// matrices, sufficient for the paper's actor-critic networks (dense
/// layers, an LSTM cell, softmax heads) and the PPO loss. Tensors are
/// cheap shared handles to graph nodes; backward() runs reverse
/// topological accumulation from a scalar loss.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_NN_TENSOR_H
#define MLIRRL_NN_TENSOR_H

#include "support/AlignedAlloc.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace mlirrl {
namespace nn {

class Tensor;

/// Tensor buffer storage: 64-byte-aligned so SIMD kernels see aligned
/// bases (the arena in Tensor.cpp recycles these).
using DBuffer = std::vector<double, AlignedAllocator<double, BufferAlignment>>;

/// The graph node behind a Tensor handle.
struct TensorNode {
  unsigned Rows = 0;
  unsigned Cols = 0;
  DBuffer Data;
  DBuffer Grad;
  bool RequiresGrad = false;

  /// Parents in the compute graph (kept alive through backward).
  std::vector<std::shared_ptr<TensorNode>> Inputs;
  /// Accumulates this node's Grad into its inputs' Grads.
  std::function<void(TensorNode &)> Backward;
  /// Operation name, for debugging.
  const char *Op = "leaf";

  double &at(unsigned R, unsigned C) { return Data[R * Cols + C]; }
  double at(unsigned R, unsigned C) const { return Data[R * Cols + C]; }
  double &gradAt(unsigned R, unsigned C) { return Grad[R * Cols + C]; }
};

/// A shared handle to a graph node.
class Tensor {
public:
  Tensor() = default;

  /// Creates a constant (non-differentiable) tensor of zeros.
  static Tensor zeros(unsigned Rows, unsigned Cols);

  /// Creates a tensor from row-major values.
  static Tensor fromData(unsigned Rows, unsigned Cols,
                         std::vector<double> Values);

  /// Creates a 1x1 scalar tensor.
  static Tensor scalar(double Value);

  /// Creates a trainable parameter (RequiresGrad = true).
  static Tensor parameter(unsigned Rows, unsigned Cols,
                          std::vector<double> Values);

  bool valid() const { return Node != nullptr; }
  unsigned rows() const { return Node->Rows; }
  unsigned cols() const { return Node->Cols; }
  unsigned size() const { return rows() * cols(); }

  double at(unsigned R, unsigned C) const { return Node->at(R, C); }
  double item() const;

  const DBuffer &data() const { return Node->Data; }
  DBuffer &mutableData() { return Node->Data; }
  const DBuffer &grad() const { return Node->Grad; }

  bool requiresGrad() const { return Node->RequiresGrad; }

  std::shared_ptr<TensorNode> node() const { return Node; }

  /// Runs reverse-mode accumulation from this scalar node (must be 1x1).
  void backward() const;

  /// Zeroes the gradient buffer of this node only.
  void zeroGrad() const;

private:
  friend Tensor makeNode(unsigned Rows, unsigned Cols,
                         std::vector<Tensor> Inputs, const char *Op);
  explicit Tensor(std::shared_ptr<TensorNode> Node) : Node(std::move(Node)) {}

  std::shared_ptr<TensorNode> Node;
};

/// Creates an op node whose RequiresGrad is inherited from its inputs.
/// The caller fills Data and Backward.
Tensor makeNode(unsigned Rows, unsigned Cols, std::vector<Tensor> Inputs,
                const char *Op);

} // namespace nn
} // namespace mlirrl

#endif // MLIRRL_NN_TENSOR_H
