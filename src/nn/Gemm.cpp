//===- Gemm.cpp -----------------------------------------------------------===//

#include "nn/Gemm.h"

#include "nn/GemmKernel.h"
#include "support/AlignedAlloc.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>

using namespace mlirrl;
using namespace mlirrl::nn;

namespace {

/// The pool minibatch-update GEMMs fan out over (see setGemmPool).
std::atomic<ThreadPool *> GemmPool{nullptr};

/// The kernel dispatch override (see setGemmKernel).
std::atomic<GemmKernel> KernelKind{GemmKernel::Auto};

/// The packing dispatch override (see setGemmPacking).
std::atomic<GemmPacking> PackingMode{GemmPacking::Auto};

/// Each thread that ever runs a packed GEMM -- the caller for serial
/// calls, every pool worker for partitioned ones -- owns one arena that
/// persists across calls, so steady-state packing allocates nothing.
AlignedArena &packArena() {
  thread_local AlignedArena Arena;
  return Arena;
}

/// Pack scratch for Elems elements of T from the calling thread's
/// arena, accounted in the "gemm.pack_arena" registry category: a
/// reuse of the existing block is a hit, a (re)allocation a miss.
/// perf_smoke/CI assert the steady state is all hits.
template <typename T> T *packScratch(size_t Elems) {
  // named() registers on first use and returns a stable reference.
  static HitMissCounters &Counters =
      CacheStatsRegistry::instance().named("gemm.pack_arena");
  bool Grew = false;
  void *P = packArena().get(Elems * sizeof(T), &Grew);
  if (Grew)
    Counters.recordMiss();
  else
    Counters.recordHit();
  return static_cast<T *>(P);
}

/// Resolves the packing dispatch for one call; AutoWants is the
/// per-shape heuristic. Like simdActive(), resolved once per public
/// entry so one call never mixes paths across its row chunks.
bool packingActive(bool AutoWants) {
  switch (PackingMode.load(std::memory_order_acquire)) {
  case GemmPacking::On:
    return true;
  case GemmPacking::Off:
    return false;
  case GemmPacking::Auto:
    break;
  }
  return AutoWants;
}

/// Auto-packing heuristics. Pure speed decisions -- packed and unpacked
/// results are bitwise-identical -- so the thresholds only need to be
/// roughly right. NN packs once the B panel footprint outgrows L2-ish
/// residency (streaming B unpacked is fine below that; the tiny
/// policy-net GEMMs stay on the streaming path). NT packs aggressively:
/// its unpacked kernel is latency-bound at ~2 GFLOP/s, so the transpose
/// copy pays for itself on anything but trivial shapes. TN's unpacked
/// kernel is already unit-stride over j; packing buys contiguous A
/// groups and register-resident C rows, which needs a reasonably wide N
/// and enough k-sweep to matter.
template <typename T> bool autoPackNN(unsigned M, unsigned N, unsigned K) {
  return M >= detail::MR &&
         static_cast<double>(K) * N * sizeof(T) >= 512.0 * 1024.0;
}
template <typename T> bool autoPackNT(unsigned M, unsigned N, unsigned K) {
  return M >= 8 && static_cast<double>(N) * K >= 16.0 * 1024.0;
}
template <typename T> bool autoPackTN(unsigned M, unsigned N, unsigned K) {
  return N >= 16 && static_cast<double>(M) * K * sizeof(T) >= 256.0 * 1024.0;
}

/// Resolves the dispatch to "run the SIMD micro-kernel?" once per
/// public entry, so one gemmAcc call never mixes kernels across its
/// row chunks.
bool simdActive() {
#if MLIRRL_GEMM_HAVE_SIMD
  return KernelKind.load(std::memory_order_acquire) != GemmKernel::Scalar;
#else
  return false;
#endif
}

/// Row-partitioning threshold: below this many multiply-adds the
/// parallelFor hand-off costs more than it saves.
constexpr double MinParallelWork = 64.0 * 1024.0;

/// Runs Fn(Row0, Rows) over contiguous row chunks of [0, M) on the
/// installed pool, or serially as one chunk. Each output row is written
/// by exactly one thread and every element keeps its serial
/// accumulation order, so the result is bitwise-independent of the
/// chunking.
template <typename RowSlice>
bool parallelOverRows(unsigned M, double Work, const RowSlice &Fn) {
  ThreadPool *Pool = GemmPool.load(std::memory_order_acquire);
  if (!Pool || Pool->size() <= 1 || Work < MinParallelWork || M < 8)
    return false;
  unsigned Chunks = std::min(Pool->size(), (M + 3) / 4);
  unsigned Rows = (M + Chunks - 1) / Chunks;
  // Round chunk sizes up to full MR register tiles so every chunk but
  // the last drives the micro-kernels tail-free (the packed drivers
  // start each chunk at row 0 of their slice). The chunk count stays a
  // pure function of (M, pool size) -- a fixed block -> thread
  // assignment -- and any row partition is bitwise-safe, so this is
  // speed-only.
  Rows = (Rows + detail::MR - 1) / detail::MR * detail::MR;
  Pool->parallelFor(Chunks, [&](size_t C) {
    unsigned Row0 = static_cast<unsigned>(C) * Rows;
    if (Row0 < M)
      Fn(Row0, std::min(Rows, M - Row0));
  });
  return true;
}

/// Debug guard at the public entry points: operand base pointers must
/// exist and be element-aligned. Sub-matrix views (e.g. the per-gate
/// W + F*N slices linearSplit passes) land at arbitrary element
/// offsets, so element alignment is the strongest invariant holding
/// here; the 64-byte alignment of whole tensor buffers is asserted
/// where it is guaranteed, in the Tensor arena.
template <typename T>
inline void assertOperands(unsigned M, unsigned N, unsigned K, const T *A,
                           const T *B, const T *C) {
#ifndef NDEBUG
  if (M == 0 || N == 0 || K == 0)
    return;
  assert(A && B && C && "GEMM operand is null");
  assert(reinterpret_cast<uintptr_t>(A) % alignof(T) == 0 &&
         reinterpret_cast<uintptr_t>(B) % alignof(T) == 0 &&
         reinterpret_cast<uintptr_t>(C) % alignof(T) == 0 &&
         "GEMM operand is not element-aligned");
#else
  (void)M;
  (void)N;
  (void)K;
  (void)A;
  (void)B;
  (void)C;
#endif
}

template <typename T>
void gemmAccNNImpl(unsigned M, unsigned N, unsigned K, const T *A,
                   unsigned LdA, const T *B, unsigned LdB, T *C,
                   unsigned LdC) {
  assertOperands(M, N, K, A, B, C);
  const bool Simd = simdActive();
  const double Work = static_cast<double>(M) * N * K;
  if (M && N && K && packingActive(autoPackNN<T>(M, N, K))) {
    // Each row chunk packs into its own thread's arena (pool workers
    // included), trading duplicated B-panel copies for zero sharing --
    // the fixed row partition alone determines who computes what.
    auto RunRows = [&](unsigned Row0, unsigned Rows) {
      T *Scratch = packScratch<T>(detail::PackScratchElems);
      T *Bp = Scratch;
      T *Ap = Scratch + detail::PackScratchAOffset;
      detail::gemmNNPackedSerial<T>(Rows, N, K,
                                    A + static_cast<size_t>(Row0) * LdA, LdA, B,
                                    LdB, C + static_cast<size_t>(Row0) * LdC,
                                    LdC, Simd, Ap, Bp);
    };
    if (!parallelOverRows(M, Work, RunRows))
      RunRows(0, M);
    return;
  }
  bool Ran = parallelOverRows(M, Work, [&](unsigned Row0, unsigned Rows) {
    detail::gemmNNSerial<T>(Rows, N, K, A + static_cast<size_t>(Row0) * LdA,
                            LdA, B, LdB, C + static_cast<size_t>(Row0) * LdC,
                            LdC, Simd);
  });
  if (!Ran)
    detail::gemmNNSerial<T>(M, N, K, A, LdA, B, LdB, C, LdC, Simd);
}

template <typename T>
void gemmAccNTImpl(unsigned M, unsigned N, unsigned K, const T *A,
                   unsigned LdA, const T *B, unsigned LdB, T *C,
                   unsigned LdC) {
  assertOperands(M, N, K, A, B, C);
  const double Work = static_cast<double>(M) * N * K;
  if (M && N && K && packingActive(autoPackNT<T>(M, N, K))) {
    const bool Simd = simdActive();
    auto RunRows = [&](unsigned Row0, unsigned Rows) {
      T *Scratch = packScratch<T>(detail::PackScratchElems);
      T *Bp = Scratch;
      T *Ap = Scratch + detail::PackScratchAOffset;
      detail::gemmNTPackedSerial<T>(Rows, N, K,
                                    A + static_cast<size_t>(Row0) * LdA, LdA, B,
                                    LdB, C + static_cast<size_t>(Row0) * LdC,
                                    LdC, Simd, Ap, Bp);
    };
    if (!parallelOverRows(M, Work, RunRows))
      RunRows(0, M);
    return;
  }
  bool Ran = parallelOverRows(M, Work, [&](unsigned Row0, unsigned Rows) {
    detail::gemmNTSerial<T>(Rows, N, K, A + static_cast<size_t>(Row0) * LdA,
                            LdA, B, LdB, C + static_cast<size_t>(Row0) * LdC,
                            LdC);
  });
  if (!Ran)
    detail::gemmNTSerial<T>(M, N, K, A, LdA, B, LdB, C, LdC);
}

template <typename T>
void gemmAccTNImpl(unsigned M, unsigned N, unsigned K, const T *A,
                   unsigned LdA, const T *B, unsigned LdB, T *C,
                   unsigned LdC) {
  assertOperands(M, N, K, A, B, C);
  // Output rows index the columns of A (stored KxM), so a row slice
  // offsets A by columns and C by rows; LdA/LdB are unchanged.
  const double Work = static_cast<double>(M) * N * K;
  if (M && N && K && packingActive(autoPackTN<T>(M, N, K))) {
    const bool Simd = simdActive();
    auto RunRows = [&](unsigned Row0, unsigned Rows) {
      T *Scratch = packScratch<T>(detail::PackScratchElems);
      T *Bp = Scratch;
      T *Ap = Scratch + detail::PackScratchAOffset;
      detail::gemmTNPackedSerial<T>(Rows, N, K, A + Row0, LdA, B, LdB,
                                    C + static_cast<size_t>(Row0) * LdC, LdC,
                                    Simd, Ap, Bp);
    };
    if (!parallelOverRows(M, Work, RunRows))
      RunRows(0, M);
    return;
  }
  bool Ran = parallelOverRows(M, Work, [&](unsigned Row0, unsigned Rows) {
    detail::gemmTNSerial<T>(Rows, N, K, A + Row0, LdA, B, LdB,
                            C + static_cast<size_t>(Row0) * LdC, LdC);
  });
  if (!Ran)
    detail::gemmTNSerial<T>(M, N, K, A, LdA, B, LdB, C, LdC);
}

} // namespace

void nn::setGemmPool(ThreadPool *Pool) {
  GemmPool.store(Pool, std::memory_order_release);
}

ThreadPool *nn::getGemmPool() {
  return GemmPool.load(std::memory_order_acquire);
}

void nn::setGemmKernel(GemmKernel Kind) {
  KernelKind.store(Kind, std::memory_order_release);
}

GemmKernel nn::getGemmKernel() {
  return KernelKind.load(std::memory_order_acquire);
}

void nn::setGemmPacking(GemmPacking Mode) {
  PackingMode.store(Mode, std::memory_order_release);
}

GemmPacking nn::getGemmPacking() {
  return PackingMode.load(std::memory_order_acquire);
}

size_t nn::gemmPackScratchCapacity() { return packArena().capacity(); }

bool nn::gemmSimdAvailable() { return MLIRRL_GEMM_HAVE_SIMD != 0; }

unsigned nn::gemmSimdLanes(size_t ElemSize) {
#if MLIRRL_GEMM_HAVE_SIMD
  switch (ElemSize) {
  case sizeof(float):
    return detail::SimdTraits<float>::Lanes;
  case sizeof(double):
    return detail::SimdTraits<double>::Lanes;
  default:
    return 1;
  }
#else
  (void)ElemSize;
  return 1;
#endif
}

void nn::gemmAccNN(unsigned M, unsigned N, unsigned K, const double *A,
                   unsigned LdA, const double *B, unsigned LdB, double *C,
                   unsigned LdC) {
  gemmAccNNImpl<double>(M, N, K, A, LdA, B, LdB, C, LdC);
}

void nn::gemmAccNN(unsigned M, unsigned N, unsigned K, const float *A,
                   unsigned LdA, const float *B, unsigned LdB, float *C,
                   unsigned LdC) {
  gemmAccNNImpl<float>(M, N, K, A, LdA, B, LdB, C, LdC);
}

void nn::gemmAccNT(unsigned M, unsigned N, unsigned K, const double *A,
                   unsigned LdA, const double *B, unsigned LdB, double *C,
                   unsigned LdC) {
  gemmAccNTImpl<double>(M, N, K, A, LdA, B, LdB, C, LdC);
}

void nn::gemmAccNT(unsigned M, unsigned N, unsigned K, const float *A,
                   unsigned LdA, const float *B, unsigned LdB, float *C,
                   unsigned LdC) {
  gemmAccNTImpl<float>(M, N, K, A, LdA, B, LdB, C, LdC);
}

void nn::gemmAccTN(unsigned M, unsigned N, unsigned K, const double *A,
                   unsigned LdA, const double *B, unsigned LdB, double *C,
                   unsigned LdC) {
  gemmAccTNImpl<double>(M, N, K, A, LdA, B, LdB, C, LdC);
}

void nn::gemmAccTN(unsigned M, unsigned N, unsigned K, const float *A,
                   unsigned LdA, const float *B, unsigned LdB, float *C,
                   unsigned LdC) {
  gemmAccTNImpl<float>(M, N, K, A, LdA, B, LdB, C, LdC);
}
