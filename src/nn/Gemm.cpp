//===- Gemm.cpp -----------------------------------------------------------===//

#include "nn/Gemm.h"

#include "nn/GemmKernel.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>

using namespace mlirrl;
using namespace mlirrl::nn;

namespace {

/// The pool minibatch-update GEMMs fan out over (see setGemmPool).
std::atomic<ThreadPool *> GemmPool{nullptr};

/// The kernel dispatch override (see setGemmKernel).
std::atomic<GemmKernel> KernelKind{GemmKernel::Auto};

/// Resolves the dispatch to "run the SIMD micro-kernel?" once per
/// public entry, so one gemmAcc call never mixes kernels across its
/// row chunks.
bool simdActive() {
#if MLIRRL_GEMM_HAVE_SIMD
  return KernelKind.load(std::memory_order_acquire) != GemmKernel::Scalar;
#else
  return false;
#endif
}

/// Row-partitioning threshold: below this many multiply-adds the
/// parallelFor hand-off costs more than it saves.
constexpr double MinParallelWork = 64.0 * 1024.0;

/// Runs Fn(Row0, Rows) over contiguous row chunks of [0, M) on the
/// installed pool, or serially as one chunk. Each output row is written
/// by exactly one thread and every element keeps its serial
/// accumulation order, so the result is bitwise-independent of the
/// chunking.
template <typename RowSlice>
bool parallelOverRows(unsigned M, double Work, const RowSlice &Fn) {
  ThreadPool *Pool = GemmPool.load(std::memory_order_acquire);
  if (!Pool || Pool->size() <= 1 || Work < MinParallelWork || M < 8)
    return false;
  unsigned Chunks = std::min(Pool->size(), (M + 3) / 4);
  unsigned Rows = (M + Chunks - 1) / Chunks;
  Pool->parallelFor(Chunks, [&](size_t C) {
    unsigned Row0 = static_cast<unsigned>(C) * Rows;
    if (Row0 < M)
      Fn(Row0, std::min(Rows, M - Row0));
  });
  return true;
}

/// Debug guard at the public entry points: operand base pointers must
/// exist and be element-aligned. Sub-matrix views (e.g. the per-gate
/// W + F*N slices linearSplit passes) land at arbitrary element
/// offsets, so element alignment is the strongest invariant holding
/// here; the 64-byte alignment of whole tensor buffers is asserted
/// where it is guaranteed, in the Tensor arena.
template <typename T>
inline void assertOperands(unsigned M, unsigned N, unsigned K, const T *A,
                           const T *B, const T *C) {
#ifndef NDEBUG
  if (M == 0 || N == 0 || K == 0)
    return;
  assert(A && B && C && "GEMM operand is null");
  assert(reinterpret_cast<uintptr_t>(A) % alignof(T) == 0 &&
         reinterpret_cast<uintptr_t>(B) % alignof(T) == 0 &&
         reinterpret_cast<uintptr_t>(C) % alignof(T) == 0 &&
         "GEMM operand is not element-aligned");
#else
  (void)M;
  (void)N;
  (void)K;
  (void)A;
  (void)B;
  (void)C;
#endif
}

template <typename T>
void gemmAccNNImpl(unsigned M, unsigned N, unsigned K, const T *A,
                   unsigned LdA, const T *B, unsigned LdB, T *C,
                   unsigned LdC) {
  assertOperands(M, N, K, A, B, C);
  const bool Simd = simdActive();
  bool Ran = parallelOverRows(
      M, static_cast<double>(M) * N * K, [&](unsigned Row0, unsigned Rows) {
        detail::gemmNNSerial<T>(Rows, N, K, A + static_cast<size_t>(Row0) * LdA,
                                LdA, B, LdB, C + static_cast<size_t>(Row0) * LdC,
                                LdC, Simd);
      });
  if (!Ran)
    detail::gemmNNSerial<T>(M, N, K, A, LdA, B, LdB, C, LdC, Simd);
}

template <typename T>
void gemmAccNTImpl(unsigned M, unsigned N, unsigned K, const T *A,
                   unsigned LdA, const T *B, unsigned LdB, T *C,
                   unsigned LdC) {
  assertOperands(M, N, K, A, B, C);
  bool Ran = parallelOverRows(
      M, static_cast<double>(M) * N * K, [&](unsigned Row0, unsigned Rows) {
        detail::gemmNTSerial<T>(Rows, N, K, A + static_cast<size_t>(Row0) * LdA,
                                LdA, B, LdB,
                                C + static_cast<size_t>(Row0) * LdC, LdC);
      });
  if (!Ran)
    detail::gemmNTSerial<T>(M, N, K, A, LdA, B, LdB, C, LdC);
}

template <typename T>
void gemmAccTNImpl(unsigned M, unsigned N, unsigned K, const T *A,
                   unsigned LdA, const T *B, unsigned LdB, T *C,
                   unsigned LdC) {
  assertOperands(M, N, K, A, B, C);
  // Output rows index the columns of A (stored KxM), so a row slice
  // offsets A by columns and C by rows; LdA/LdB are unchanged.
  bool Ran = parallelOverRows(
      M, static_cast<double>(M) * N * K, [&](unsigned Row0, unsigned Rows) {
        detail::gemmTNSerial<T>(Rows, N, K, A + Row0, LdA, B, LdB,
                                C + static_cast<size_t>(Row0) * LdC, LdC);
      });
  if (!Ran)
    detail::gemmTNSerial<T>(M, N, K, A, LdA, B, LdB, C, LdC);
}

} // namespace

void nn::setGemmPool(ThreadPool *Pool) {
  GemmPool.store(Pool, std::memory_order_release);
}

ThreadPool *nn::getGemmPool() {
  return GemmPool.load(std::memory_order_acquire);
}

void nn::setGemmKernel(GemmKernel Kind) {
  KernelKind.store(Kind, std::memory_order_release);
}

GemmKernel nn::getGemmKernel() {
  return KernelKind.load(std::memory_order_acquire);
}

bool nn::gemmSimdAvailable() { return MLIRRL_GEMM_HAVE_SIMD != 0; }

unsigned nn::gemmSimdLanes(size_t ElemSize) {
#if MLIRRL_GEMM_HAVE_SIMD
  switch (ElemSize) {
  case sizeof(float):
    return detail::SimdTraits<float>::Lanes;
  case sizeof(double):
    return detail::SimdTraits<double>::Lanes;
  default:
    return 1;
  }
#else
  (void)ElemSize;
  return 1;
#endif
}

void nn::gemmAccNN(unsigned M, unsigned N, unsigned K, const double *A,
                   unsigned LdA, const double *B, unsigned LdB, double *C,
                   unsigned LdC) {
  gemmAccNNImpl<double>(M, N, K, A, LdA, B, LdB, C, LdC);
}

void nn::gemmAccNN(unsigned M, unsigned N, unsigned K, const float *A,
                   unsigned LdA, const float *B, unsigned LdB, float *C,
                   unsigned LdC) {
  gemmAccNNImpl<float>(M, N, K, A, LdA, B, LdB, C, LdC);
}

void nn::gemmAccNT(unsigned M, unsigned N, unsigned K, const double *A,
                   unsigned LdA, const double *B, unsigned LdB, double *C,
                   unsigned LdC) {
  gemmAccNTImpl<double>(M, N, K, A, LdA, B, LdB, C, LdC);
}

void nn::gemmAccNT(unsigned M, unsigned N, unsigned K, const float *A,
                   unsigned LdA, const float *B, unsigned LdB, float *C,
                   unsigned LdC) {
  gemmAccNTImpl<float>(M, N, K, A, LdA, B, LdB, C, LdC);
}

void nn::gemmAccTN(unsigned M, unsigned N, unsigned K, const double *A,
                   unsigned LdA, const double *B, unsigned LdB, double *C,
                   unsigned LdC) {
  gemmAccTNImpl<double>(M, N, K, A, LdA, B, LdB, C, LdC);
}

void nn::gemmAccTN(unsigned M, unsigned N, unsigned K, const float *A,
                   unsigned LdA, const float *B, unsigned LdB, float *C,
                   unsigned LdC) {
  gemmAccTNImpl<float>(M, N, K, A, LdA, B, LdB, C, LdC);
}
