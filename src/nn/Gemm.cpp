//===- Gemm.cpp -----------------------------------------------------------===//

#include "nn/Gemm.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>

using namespace mlirrl;
using namespace mlirrl::nn;

namespace {

/// The pool minibatch-update GEMMs fan out over (see setGemmPool).
std::atomic<ThreadPool *> GemmPool{nullptr};

/// Row-partitioning threshold: below this many multiply-adds the
/// parallelFor hand-off costs more than it saves.
constexpr double MinParallelWork = 64.0 * 1024.0;

/// Runs Fn(Row0, Rows) over contiguous row chunks of [0, M) on the
/// installed pool, or serially as one chunk. Each output row is written
/// by exactly one thread and every element keeps its serial
/// accumulation order, so the result is bitwise-independent of the
/// chunking.
template <typename RowSlice>
bool parallelOverRows(unsigned M, double Work, const RowSlice &Fn) {
  ThreadPool *Pool = GemmPool.load(std::memory_order_acquire);
  if (!Pool || Pool->size() <= 1 || Work < MinParallelWork || M < 8)
    return false;
  unsigned Chunks = std::min(Pool->size(), (M + 3) / 4);
  unsigned Rows = (M + Chunks - 1) / Chunks;
  Pool->parallelFor(Chunks, [&](size_t C) {
    unsigned Row0 = static_cast<unsigned>(C) * Rows;
    if (Row0 < M)
      Fn(Row0, std::min(Rows, M - Row0));
  });
  return true;
}

} // namespace

void nn::setGemmPool(ThreadPool *Pool) {
  GemmPool.store(Pool, std::memory_order_release);
}

ThreadPool *nn::getGemmPool() {
  return GemmPool.load(std::memory_order_acquire);
}

namespace {

/// Cache-blocking parameters (doubles): a KC x NC panel of B (~256 KiB)
/// stays L2-resident while MC rows of A stream against it; the MR-row
/// register tile amortizes each B load over MR accumulator rows.
constexpr unsigned MC = 64;
constexpr unsigned KC = 256;
constexpr unsigned NC = 512;
constexpr unsigned MR = 4;

/// Register-tiled inner kernel: C[i0..i0+Rows) x [j0..j1) accumulates the
/// K-panel [k0..k1). Rows <= MR; the j loop is the vectorized axis and
/// each B row loaded from the panel feeds Rows accumulator rows.
inline void microNN(unsigned Rows, unsigned j0, unsigned j1, unsigned k0,
                    unsigned k1, const double *__restrict A, unsigned LdA,
                    const double *__restrict B, unsigned LdB,
                    double *__restrict C, unsigned LdC, unsigned i0) {
  switch (Rows) {
  case 4:
    for (unsigned K = k0; K < k1; ++K) {
      const double A0 = A[(i0 + 0) * LdA + K];
      const double A1 = A[(i0 + 1) * LdA + K];
      const double A2 = A[(i0 + 2) * LdA + K];
      const double A3 = A[(i0 + 3) * LdA + K];
      const double *__restrict Bk = B + static_cast<size_t>(K) * LdB;
      double *__restrict C0 = C + static_cast<size_t>(i0 + 0) * LdC;
      double *__restrict C1 = C + static_cast<size_t>(i0 + 1) * LdC;
      double *__restrict C2 = C + static_cast<size_t>(i0 + 2) * LdC;
      double *__restrict C3 = C + static_cast<size_t>(i0 + 3) * LdC;
      for (unsigned J = j0; J < j1; ++J) {
        const double Bv = Bk[J];
        C0[J] += A0 * Bv;
        C1[J] += A1 * Bv;
        C2[J] += A2 * Bv;
        C3[J] += A3 * Bv;
      }
    }
    break;
  default:
    for (unsigned I = i0; I < i0 + Rows; ++I) {
      double *__restrict Ci = C + static_cast<size_t>(I) * LdC;
      for (unsigned K = k0; K < k1; ++K) {
        const double Av = A[I * LdA + K];
        const double *__restrict Bk = B + static_cast<size_t>(K) * LdB;
        for (unsigned J = j0; J < j1; ++J)
          Ci[J] += Av * Bk[J];
      }
    }
    break;
  }
}

} // namespace

static void gemmAccNNSerial(unsigned M, unsigned N, unsigned K,
                            const double *A, unsigned LdA, const double *B,
                            unsigned LdB, double *C, unsigned LdC) {
  for (unsigned Jj = 0; Jj < N; Jj += NC) {
    unsigned Jend = std::min(N, Jj + NC);
    for (unsigned Kk = 0; Kk < K; Kk += KC) {
      unsigned Kend = std::min(K, Kk + KC);
      for (unsigned Ii = 0; Ii < M; Ii += MC) {
        unsigned Iend = std::min(M, Ii + MC);
        unsigned I = Ii;
        for (; I + MR <= Iend; I += MR)
          microNN(MR, Jj, Jend, Kk, Kend, A, LdA, B, LdB, C, LdC, I);
        if (I < Iend)
          microNN(Iend - I, Jj, Jend, Kk, Kend, A, LdA, B, LdB, C, LdC, I);
      }
    }
  }
}

static void gemmAccNTSerial(unsigned M, unsigned N, unsigned K,
                            const double *A, unsigned LdA, const double *B,
                            unsigned LdB, double *C, unsigned LdC) {
  // C[i][j] += sum_k A[i][k] * B[j][k]: both operands are scanned along
  // k, so the inner loop is a unit-stride dot product; block j so the
  // scanned rows of B stay cache-resident across the i loop.
  for (unsigned Jj = 0; Jj < N; Jj += MC) {
    unsigned Jend = std::min(N, Jj + MC);
    for (unsigned Kk = 0; Kk < K; Kk += KC) {
      unsigned Kend = std::min(K, Kk + KC);
      for (unsigned I = 0; I < M; ++I) {
        const double *__restrict Ai = A + static_cast<size_t>(I) * LdA;
        double *__restrict Ci = C + static_cast<size_t>(I) * LdC;
        for (unsigned J = Jj; J < Jend; ++J) {
          const double *__restrict Bj = B + static_cast<size_t>(J) * LdB;
          double Acc = 0.0;
          for (unsigned Kx = Kk; Kx < Kend; ++Kx)
            Acc += Ai[Kx] * Bj[Kx];
          Ci[J] += Acc;
        }
      }
    }
  }
}

static void gemmAccTNSerial(unsigned M, unsigned N, unsigned K,
                            const double *A, unsigned LdA, const double *B,
                            unsigned LdB, double *C, unsigned LdC) {
  // C[i][j] += sum_k A[k][i] * B[k][j]: a sequence of rank-1 updates.
  // Unroll k by MR so each C row load/store is amortized over MR
  // accumulated outer products; block i so the updated C panel stays
  // cache-resident across the k sweep.
  for (unsigned Ii = 0; Ii < M; Ii += MC) {
    unsigned Iend = std::min(M, Ii + MC);
    for (unsigned Jj = 0; Jj < N; Jj += NC) {
      unsigned Jend = std::min(N, Jj + NC);
      unsigned Kx = 0;
      for (; Kx + MR <= K; Kx += MR) {
        const double *__restrict A0 = A + static_cast<size_t>(Kx + 0) * LdA;
        const double *__restrict A1 = A + static_cast<size_t>(Kx + 1) * LdA;
        const double *__restrict A2 = A + static_cast<size_t>(Kx + 2) * LdA;
        const double *__restrict A3 = A + static_cast<size_t>(Kx + 3) * LdA;
        const double *__restrict B0 = B + static_cast<size_t>(Kx + 0) * LdB;
        const double *__restrict B1 = B + static_cast<size_t>(Kx + 1) * LdB;
        const double *__restrict B2 = B + static_cast<size_t>(Kx + 2) * LdB;
        const double *__restrict B3 = B + static_cast<size_t>(Kx + 3) * LdB;
        for (unsigned I = Ii; I < Iend; ++I) {
          const double V0 = A0[I], V1 = A1[I], V2 = A2[I], V3 = A3[I];
          // Rows fed only by zeros contribute nothing; skipping them is
          // exact and pays off in dW += X^T . dC with sparse feature
          // batches X, where entire feature columns are zero.
          if (V0 == 0.0 && V1 == 0.0 && V2 == 0.0 && V3 == 0.0)
            continue;
          double *__restrict Ci = C + static_cast<size_t>(I) * LdC;
          for (unsigned J = Jj; J < Jend; ++J)
            Ci[J] += V0 * B0[J] + V1 * B1[J] + V2 * B2[J] + V3 * B3[J];
        }
      }
      for (; Kx < K; ++Kx) {
        const double *__restrict Ak = A + static_cast<size_t>(Kx) * LdA;
        const double *__restrict Bk = B + static_cast<size_t>(Kx) * LdB;
        for (unsigned I = Ii; I < Iend; ++I) {
          const double V = Ak[I];
          // Zero rows contribute nothing; skipping them is exact and
          // pays off in the K == 1 case (dW += X^T . dC with a sparse
          // feature row X), where every zero skips a full C-row update.
          if (V == 0.0)
            continue;
          double *__restrict Ci = C + static_cast<size_t>(I) * LdC;
          for (unsigned J = Jj; J < Jend; ++J)
            Ci[J] += V * Bk[J];
        }
      }
    }
  }
}

void nn::gemmAccNN(unsigned M, unsigned N, unsigned K, const double *A,
                   unsigned LdA, const double *B, unsigned LdB, double *C,
                   unsigned LdC) {
  bool Ran = parallelOverRows(
      M, static_cast<double>(M) * N * K, [&](unsigned Row0, unsigned Rows) {
        gemmAccNNSerial(Rows, N, K, A + static_cast<size_t>(Row0) * LdA, LdA,
                        B, LdB, C + static_cast<size_t>(Row0) * LdC, LdC);
      });
  if (!Ran)
    gemmAccNNSerial(M, N, K, A, LdA, B, LdB, C, LdC);
}

void nn::gemmAccNT(unsigned M, unsigned N, unsigned K, const double *A,
                   unsigned LdA, const double *B, unsigned LdB, double *C,
                   unsigned LdC) {
  bool Ran = parallelOverRows(
      M, static_cast<double>(M) * N * K, [&](unsigned Row0, unsigned Rows) {
        gemmAccNTSerial(Rows, N, K, A + static_cast<size_t>(Row0) * LdA, LdA,
                        B, LdB, C + static_cast<size_t>(Row0) * LdC, LdC);
      });
  if (!Ran)
    gemmAccNTSerial(M, N, K, A, LdA, B, LdB, C, LdC);
}

void nn::gemmAccTN(unsigned M, unsigned N, unsigned K, const double *A,
                   unsigned LdA, const double *B, unsigned LdB, double *C,
                   unsigned LdC) {
  // Output rows index the columns of A (stored KxM), so a row slice
  // offsets A by columns and C by rows; LdA/LdB are unchanged.
  bool Ran = parallelOverRows(
      M, static_cast<double>(M) * N * K, [&](unsigned Row0, unsigned Rows) {
        gemmAccTNSerial(Rows, N, K, A + Row0, LdA, B, LdB,
                        C + static_cast<size_t>(Row0) * LdC, LdC);
      });
  if (!Ran)
    gemmAccTNSerial(M, N, K, A, LdA, B, LdB, C, LdC);
}
