//===- Ops.h - Differentiable tensor operations ------------------*- C++-*-===//
///
/// \file
/// The differentiable operations the actor-critic networks and the PPO
/// loss are built from. All operate on 2-D tensors; every op returns a new
/// graph node with a backward closure.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_NN_OPS_H
#define MLIRRL_NN_OPS_H

#include "nn/Tensor.h"

namespace mlirrl {
namespace nn {

/// C[MxN] = A[MxK] x B[KxN]. Forward and both backward products run on
/// the blocked kernels of Gemm.h.
Tensor matmul(const Tensor &A, const Tensor &B);

/// Fused dense layer: C[MxN] = A[MxK] x W[KxN] + Bias[1xN] broadcast over
/// rows, as a single graph node (one less temporary than
/// addBias(matmul(...))). Backward accumulates dA, dW and the column-sum
/// bias gradient.
Tensor linear(const Tensor &A, const Tensor &W, const Tensor &Bias);

/// Fused concatenated dense layer: C = [X, H] x W + Bias without
/// materializing the concatenation ([BxF] and [BxG] against W
/// [(F+G)xN]). Forward accumulates k ascending across the X rows then
/// the H rows of W -- bitwise what linear(concatCols(X, H), W, Bias)
/// produces -- but backward only touches the inputs that require
/// gradients: when X is a non-trainable feature leaf (the LSTM gate
/// case), the dX product is skipped entirely instead of being computed
/// and discarded by the concat.
Tensor linearSplit(const Tensor &X, const Tensor &H, const Tensor &W,
                   const Tensor &Bias);

/// A batch of mostly-zero feature rows in compressed form: only the
/// nonzero (column, value) pairs, ascending per row. Observation
/// feature vectors are ~97% zeros (masking and padding), so compressing
/// once per batch replaces the per-gate scans over the dense width.
struct SparseRows {
  struct Entry {
    unsigned Col = 0;
    double Value = 0.0;
  };
  unsigned Rows = 0;
  unsigned Cols = 0;
  std::vector<std::vector<Entry>> RowEntries;

  /// Compresses one row per source vector (all the same length).
  static SparseRows
  fromRows(const std::vector<const std::vector<double> *> &Sources);
};

/// linearSplit with the X operand in compressed sparse form (shared by
/// all four gates of an LSTM step, so the batch is compressed once).
/// Bitwise-identical to the dense product: skipped zeros contribute
/// nothing and the k / row accumulation orders are unchanged. X is
/// treated as a constant; backward produces dH, dW (only the nonzero
/// feature rows) and dBias.
Tensor linearSplitSparse(const std::shared_ptr<const SparseRows> &X,
                         const Tensor &H, const Tensor &W,
                         const Tensor &Bias);

/// Elementwise addition of same-shaped tensors.
Tensor add(const Tensor &A, const Tensor &B);

/// Adds a 1xN bias row to every row of A[MxN].
Tensor addBias(const Tensor &A, const Tensor &Bias);

/// Elementwise subtraction.
Tensor sub(const Tensor &A, const Tensor &B);

/// Elementwise (Hadamard) product.
Tensor hadamard(const Tensor &A, const Tensor &B);

/// Multiplication by a compile-time constant.
Tensor scale(const Tensor &A, double Factor);

/// Elementwise nonlinearities.
Tensor relu(const Tensor &A);
Tensor tanhOp(const Tensor &A);
Tensor sigmoidOp(const Tensor &A);
Tensor expOp(const Tensor &A);

/// Elementwise clamp; gradient is zero outside [Lo, Hi].
Tensor clamp(const Tensor &A, double Lo, double Hi);

/// Elementwise minimum with subgradient following the selected branch.
Tensor minOp(const Tensor &A, const Tensor &B);

/// Row-wise log-softmax with an optional 0/1 mask (same shape); masked
/// entries contribute -inf logits and receive zero gradient. Pass an
/// invalid Tensor for no mask.
Tensor logSoftmaxRows(const Tensor &Logits, const Tensor &Mask = Tensor());

/// Picks one element as a scalar (used for log-prob of a chosen action).
Tensor pick(const Tensor &A, unsigned Row, unsigned Col);

/// Batched pick: Out[r][0] = A[r][Cols[r]]. A column of -1 contributes
/// 0.0 and receives no gradient (rows whose policy head is inactive in
/// a mixed minibatch).
Tensor pickPerRow(const Tensor &A, const std::vector<int> &Cols);

/// Per-row sum: Out[r][0] = sum_j A[r][j].
Tensor rowSums(const Tensor &A);

/// Sum / mean over all entries, returning a scalar.
Tensor sumAll(const Tensor &A);
Tensor meanAll(const Tensor &A);

/// Mean of a list of scalars (losses across a minibatch).
Tensor meanOf(const std::vector<Tensor> &Scalars);

/// Concatenates [BxN] and [BxM] (equal row counts) into [Bx(N+M)].
Tensor concatCols(const Tensor &A, const Tensor &B);

/// Extracts columns [Start, Start+Len) of every row of [BxN] (used to
/// carve per-loop-level blocks out of the N*M tile heads).
Tensor sliceCols(const Tensor &A, unsigned Start, unsigned Len);

/// Row-wise entropy of the distribution implied by masked logits:
/// -sum(p * log p) per row, summed over rows, as a scalar.
Tensor entropyOfLogits(const Tensor &Logits, const Tensor &Mask = Tensor());

/// Per-row entropy of masked logits as a [Bx1] column (the batched PPO
/// update's entropy regularizer).
Tensor entropyRowsOfLogits(const Tensor &Logits,
                           const Tensor &Mask = Tensor());

} // namespace nn
} // namespace mlirrl

#endif // MLIRRL_NN_OPS_H
