//===- Ops.h - Differentiable tensor operations ------------------*- C++-*-===//
///
/// \file
/// The differentiable operations the actor-critic networks and the PPO
/// loss are built from. All operate on 2-D tensors; every op returns a new
/// graph node with a backward closure.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_NN_OPS_H
#define MLIRRL_NN_OPS_H

#include "nn/Tensor.h"

namespace mlirrl {
namespace nn {

/// C[MxN] = A[MxK] x B[KxN]. Forward and both backward products run on
/// the blocked kernels of Gemm.h.
Tensor matmul(const Tensor &A, const Tensor &B);

/// Fused dense layer: C[MxN] = A[MxK] x W[KxN] + Bias[1xN] broadcast over
/// rows, as a single graph node (one less temporary than
/// addBias(matmul(...))). Backward accumulates dA, dW and the column-sum
/// bias gradient.
Tensor linear(const Tensor &A, const Tensor &W, const Tensor &Bias);

/// Elementwise addition of same-shaped tensors.
Tensor add(const Tensor &A, const Tensor &B);

/// Adds a 1xN bias row to every row of A[MxN].
Tensor addBias(const Tensor &A, const Tensor &Bias);

/// Elementwise subtraction.
Tensor sub(const Tensor &A, const Tensor &B);

/// Elementwise (Hadamard) product.
Tensor hadamard(const Tensor &A, const Tensor &B);

/// Multiplication by a compile-time constant.
Tensor scale(const Tensor &A, double Factor);

/// Elementwise nonlinearities.
Tensor relu(const Tensor &A);
Tensor tanhOp(const Tensor &A);
Tensor sigmoidOp(const Tensor &A);
Tensor expOp(const Tensor &A);

/// Elementwise clamp; gradient is zero outside [Lo, Hi].
Tensor clamp(const Tensor &A, double Lo, double Hi);

/// Elementwise minimum with subgradient following the selected branch.
Tensor minOp(const Tensor &A, const Tensor &B);

/// Row-wise log-softmax with an optional 0/1 mask (same shape); masked
/// entries contribute -inf logits and receive zero gradient. Pass an
/// invalid Tensor for no mask.
Tensor logSoftmaxRows(const Tensor &Logits, const Tensor &Mask = Tensor());

/// Picks one element as a scalar (used for log-prob of a chosen action).
Tensor pick(const Tensor &A, unsigned Row, unsigned Col);

/// Sum / mean over all entries, returning a scalar.
Tensor sumAll(const Tensor &A);
Tensor meanAll(const Tensor &A);

/// Mean of a list of scalars (losses across a minibatch).
Tensor meanOf(const std::vector<Tensor> &Scalars);

/// Concatenates two row vectors [1xN], [1xM] into [1x(N+M)].
Tensor concatCols(const Tensor &A, const Tensor &B);

/// Extracts columns [Start, Start+Len) of a row vector [1xN] (used to
/// carve per-loop-level rows out of the N*M tile heads).
Tensor sliceCols(const Tensor &A, unsigned Start, unsigned Len);

/// Row-wise entropy of the distribution implied by masked logits:
/// -sum(p * log p) per row, summed over rows, as a scalar.
Tensor entropyOfLogits(const Tensor &Logits, const Tensor &Mask = Tensor());

} // namespace nn
} // namespace mlirrl

#endif // MLIRRL_NN_OPS_H
