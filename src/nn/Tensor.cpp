//===- Tensor.cpp ---------------------------------------------------------===//

#include "nn/Tensor.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace mlirrl;
using namespace mlirrl::nn;

Tensor Tensor::zeros(unsigned Rows, unsigned Cols) {
  auto Node = std::make_shared<TensorNode>();
  Node->Rows = Rows;
  Node->Cols = Cols;
  Node->Data.assign(static_cast<size_t>(Rows) * Cols, 0.0);
  Node->Grad.assign(Node->Data.size(), 0.0);
  return Tensor(std::move(Node));
}

Tensor Tensor::fromData(unsigned Rows, unsigned Cols,
                        std::vector<double> Values) {
  assert(Values.size() == static_cast<size_t>(Rows) * Cols &&
         "data size mismatch");
  Tensor T = zeros(Rows, Cols);
  T.Node->Data = std::move(Values);
  return T;
}

Tensor Tensor::scalar(double Value) { return fromData(1, 1, {Value}); }

Tensor Tensor::parameter(unsigned Rows, unsigned Cols,
                         std::vector<double> Values) {
  Tensor T = fromData(Rows, Cols, std::move(Values));
  T.Node->RequiresGrad = true;
  return T;
}

double Tensor::item() const {
  assert(size() == 1 && "item() requires a scalar tensor");
  return Node->Data[0];
}

void Tensor::zeroGrad() const {
  std::fill(Node->Grad.begin(), Node->Grad.end(), 0.0);
}

void Tensor::backward() const {
  assert(size() == 1 && "backward() starts from a scalar loss");

  // Topological order via iterative DFS.
  std::vector<TensorNode *> Order;
  std::unordered_set<TensorNode *> Visited;
  std::vector<std::pair<TensorNode *, size_t>> Stack;
  Stack.push_back({Node.get(), 0});
  Visited.insert(Node.get());
  while (!Stack.empty()) {
    auto &[N, NextInput] = Stack.back();
    if (NextInput < N->Inputs.size()) {
      TensorNode *In = N->Inputs[NextInput++].get();
      if (Visited.insert(In).second)
        Stack.push_back({In, 0});
      continue;
    }
    Order.push_back(N);
    Stack.pop_back();
  }

  // Seed and propagate in reverse topological order.
  Node->Grad[0] = 1.0;
  for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
    TensorNode *N = *It;
    if (N->Backward)
      N->Backward(*N);
  }
}

Tensor mlirrl::nn::makeNode(unsigned Rows, unsigned Cols,
                            std::vector<Tensor> Inputs, const char *Op) {
  Tensor T = Tensor::zeros(Rows, Cols);
  T.Node->Op = Op;
  for (const Tensor &In : Inputs) {
    assert(In.valid() && "invalid input tensor");
    T.Node->RequiresGrad |= In.requiresGrad();
    T.Node->Inputs.push_back(In.node());
  }
  return T;
}
