//===- Tensor.cpp ---------------------------------------------------------===//

#include "nn/Tensor.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <unordered_set>

using namespace mlirrl;
using namespace mlirrl::nn;

namespace {

/// A per-thread recycling arena for tensor buffers. Graph construction
/// allocates two buffers per node and frees them when the graph dies at
/// the end of each step/minibatch; the shapes repeat every iteration, so
/// returned buffers are almost always reused at their existing capacity
/// instead of hitting the allocator.
class BufferArena {
public:
  static BufferArena &local() {
    thread_local BufferArena Arena;
    return Arena;
  }

  DBuffer acquire(size_t Size) {
    DBuffer Buffer = reuse(Size);
    Buffer.assign(Size, 0.0);
    assert(Buffer.empty() || reinterpret_cast<uintptr_t>(Buffer.data()) %
                                     BufferAlignment ==
                                 0);
    return Buffer;
  }

  /// A recycled buffer filled with a copy of [Values, Values + Size)
  /// instead of zeros (one pass, no zero-fill).
  DBuffer acquireFrom(const double *Values, size_t Size) {
    DBuffer Buffer = reuse(Size);
    Buffer.assign(Values, Values + Size);
    assert(Buffer.empty() || reinterpret_cast<uintptr_t>(Buffer.data()) %
                                     BufferAlignment ==
                                 0);
    return Buffer;
  }

  void release(DBuffer &&Buffer) {
    size_t Bytes = Buffer.capacity() * sizeof(double);
    if (Bytes == 0 || Free.size() >= MaxEntries ||
        PooledBytes + Bytes > MaxPooledBytes)
      return;
    PooledBytes += Bytes;
    Free.push_back(std::move(Buffer));
  }

private:
  /// LIFO reuse matches the repeating allocation pattern; scan a few
  /// entries for one already big enough so assign() never reallocates.
  /// All buffers come from the 64-byte-aligned allocator (DBuffer), so
  /// every tensor base the GEMM/SIMD kernels see is cache-line aligned.
  DBuffer reuse(size_t Size) {
    size_t Limit = Free.size() > ScanDepth ? Free.size() - ScanDepth : 0;
    for (size_t I = Free.size(); I > Limit; --I) {
      if (Free[I - 1].capacity() >= Size) {
        DBuffer Buffer = std::move(Free[I - 1]);
        Free.erase(Free.begin() + static_cast<ptrdiff_t>(I - 1));
        PooledBytes -= Buffer.capacity() * sizeof(double);
        return Buffer;
      }
    }
    return DBuffer();
  }

  static constexpr size_t ScanDepth = 8;
  static constexpr size_t MaxEntries = 1024;
  static constexpr size_t MaxPooledBytes = 128u << 20;

  std::vector<DBuffer> Free;
  size_t PooledBytes = 0;
};

/// Returns a node's buffers to the destroying thread's arena.
void destroyNode(TensorNode *Node) {
  BufferArena &Arena = BufferArena::local();
  Arena.release(std::move(Node->Data));
  Arena.release(std::move(Node->Grad));
  delete Node;
}

} // namespace

Tensor Tensor::zeros(unsigned Rows, unsigned Cols) {
  // Grad stays unallocated until backward() reaches the node: inference
  // graphs (rollouts, greedy evaluation) never touch it, which halves
  // their buffer traffic.
  std::shared_ptr<TensorNode> Node(new TensorNode, destroyNode);
  Node->Rows = Rows;
  Node->Cols = Cols;
  Node->Data = BufferArena::local().acquire(static_cast<size_t>(Rows) * Cols);
  return Tensor(std::move(Node));
}

Tensor Tensor::fromData(unsigned Rows, unsigned Cols,
                        std::vector<double> Values) {
  assert(Values.size() == static_cast<size_t>(Rows) * Cols &&
         "data size mismatch");
  // The caller's buffer is copied into an arena buffer (one pass, no
  // zero-fill) so Data keeps the arena's 64-byte alignment guarantee.
  std::shared_ptr<TensorNode> Node(new TensorNode, destroyNode);
  Node->Rows = Rows;
  Node->Cols = Cols;
  Node->Data = BufferArena::local().acquireFrom(Values.data(), Values.size());
  return Tensor(std::move(Node));
}

Tensor Tensor::scalar(double Value) { return fromData(1, 1, {Value}); }

Tensor Tensor::parameter(unsigned Rows, unsigned Cols,
                         std::vector<double> Values) {
  Tensor T = fromData(Rows, Cols, std::move(Values));
  T.Node->RequiresGrad = true;
  // Parameters are long-lived and the optimizer indexes their gradient
  // unconditionally, so theirs is allocated eagerly.
  T.Node->Grad.assign(T.Node->Data.size(), 0.0);
  return T;
}

double Tensor::item() const {
  assert(size() == 1 && "item() requires a scalar tensor");
  return Node->Data[0];
}

void Tensor::zeroGrad() const {
  std::fill(Node->Grad.begin(), Node->Grad.end(), 0.0);
}

void Tensor::backward() const {
  assert(size() == 1 && "backward() starts from a scalar loss");

  // Topological order via iterative DFS.
  std::vector<TensorNode *> Order;
  std::unordered_set<TensorNode *> Visited;
  std::vector<std::pair<TensorNode *, size_t>> Stack;
  Stack.push_back({Node.get(), 0});
  Visited.insert(Node.get());
  while (!Stack.empty()) {
    auto &[N, NextInput] = Stack.back();
    if (NextInput < N->Inputs.size()) {
      TensorNode *In = N->Inputs[NextInput++].get();
      if (Visited.insert(In).second)
        Stack.push_back({In, 0});
      continue;
    }
    Order.push_back(N);
    Stack.pop_back();
  }

  // Gradients are lazily allocated; materialize them for every node
  // the sweep can touch (zeroed, from the arena).
  BufferArena &Arena = BufferArena::local();
  for (TensorNode *N : Order)
    if (N->Grad.size() != N->Data.size())
      N->Grad = Arena.acquire(N->Data.size());

  // Seed and propagate in reverse topological order.
  Node->Grad[0] = 1.0;
  for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
    TensorNode *N = *It;
    if (N->Backward)
      N->Backward(*N);
  }
}

Tensor mlirrl::nn::makeNode(unsigned Rows, unsigned Cols,
                            std::vector<Tensor> Inputs, const char *Op) {
  Tensor T = Tensor::zeros(Rows, Cols);
  T.Node->Op = Op;
  for (const Tensor &In : Inputs) {
    assert(In.valid() && "invalid input tensor");
    T.Node->RequiresGrad |= In.requiresGrad();
    T.Node->Inputs.push_back(In.node());
  }
  return T;
}
