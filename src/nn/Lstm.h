//===- Lstm.h - LSTM cell -----------------------------------------*- C++-*-===//
///
/// \file
/// A standard LSTM cell. The paper feeds the producer and consumer
/// representation vectors sequentially into an LSTM with 512 units and
/// uses the final hidden state as the producer-consumer embedding
/// (Sec. V-A1).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_NN_LSTM_H
#define MLIRRL_NN_LSTM_H

#include "nn/Layers.h"

namespace mlirrl {
namespace nn {

/// One LSTM cell; step() advances one timestep.
class LstmCell {
public:
  LstmCell() = default;
  LstmCell(unsigned In, unsigned Hidden, Rng &Rng);

  struct State {
    Tensor H; // B x Hidden
    Tensor C; // B x Hidden
  };

  /// A zero initial state for a batch of \p BatchRows independent
  /// sequences (rows never interact, so row r of a batched run is
  /// bitwise-identical to a width-1 run of that sequence).
  State initialState(unsigned BatchRows = 1) const;

  /// Advances one step with input X [B x In].
  State step(const Tensor &X, const State &Prev) const;

  /// Advances one step with the input batch in compressed sparse form
  /// (bitwise the dense step; all four gates share the compression).
  State stepSparse(const std::shared_ptr<const SparseRows> &X,
                   const State &Prev) const;

  /// Runs a sequence of [B x In] inputs and returns the final hidden
  /// state (the embedding), one row per batch element.
  Tensor runSequence(const std::vector<Tensor> &Sequence) const;

  /// runSequence over compressed sparse input batches -- the embedding
  /// fast path (observation features are ~97% zeros).
  Tensor runSequenceSparse(
      const std::vector<std::shared_ptr<const SparseRows>> &Sequence) const;

  std::vector<Tensor> parameters() const;
  unsigned hiddenSize() const { return Hidden; }

  /// Gate layers (read-only; the f32 inference packer copies them).
  const Linear &inputGate() const { return InputGate; }
  const Linear &forgetGate() const { return ForgetGate; }
  const Linear &cellGate() const { return CellGate; }
  const Linear &outputGate() const { return OutputGate; }

private:
  unsigned Hidden = 0;
  // Gate layers over the concatenated [x, h] input.
  Linear InputGate, ForgetGate, CellGate, OutputGate;
};

} // namespace nn
} // namespace mlirrl

#endif // MLIRRL_NN_LSTM_H
