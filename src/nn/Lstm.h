//===- Lstm.h - LSTM cell -----------------------------------------*- C++-*-===//
///
/// \file
/// A standard LSTM cell. The paper feeds the producer and consumer
/// representation vectors sequentially into an LSTM with 512 units and
/// uses the final hidden state as the producer-consumer embedding
/// (Sec. V-A1).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_NN_LSTM_H
#define MLIRRL_NN_LSTM_H

#include "nn/Layers.h"

namespace mlirrl {
namespace nn {

/// One LSTM cell; step() advances one timestep.
class LstmCell {
public:
  LstmCell() = default;
  LstmCell(unsigned In, unsigned Hidden, Rng &Rng);

  struct State {
    Tensor H; // 1 x Hidden
    Tensor C; // 1 x Hidden
  };

  /// A zero initial state.
  State initialState() const;

  /// Advances one step with input X [1 x In].
  State step(const Tensor &X, const State &Prev) const;

  /// Runs a sequence and returns the final hidden state (the embedding).
  Tensor runSequence(const std::vector<Tensor> &Sequence) const;

  std::vector<Tensor> parameters() const;
  unsigned hiddenSize() const { return Hidden; }

private:
  unsigned Hidden = 0;
  // Gate layers over the concatenated [x, h] input.
  Linear InputGate, ForgetGate, CellGate, OutputGate;
};

} // namespace nn
} // namespace mlirrl

#endif // MLIRRL_NN_LSTM_H
