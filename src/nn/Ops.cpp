//===- Ops.cpp ------------------------------------------------------------===//

#include "nn/Ops.h"

#include "nn/Gemm.h"
#include "support/Error.h"

#include <cassert>
#include <cmath>

using namespace mlirrl;
using namespace mlirrl::nn;

/// Large negative logit standing in for -inf under masking; exp underflows
/// to zero and gradients stay finite.
static constexpr double MaskedLogit = -1e30;

/// Forward product into a zeroed buffer. Single rows (the common
/// inference shape: a 1xK feature row against a KxN weight matrix) take a
/// sparse-aware axpy path -- feature rows are mostly zeros under masking
/// and padding, and skipping them is exact; everything else goes through
/// the blocked kernel.
static void forwardProduct(unsigned M, unsigned N, unsigned K,
                           const double *A, const double *B, double *C) {
  if (M == 1) {
    for (unsigned Kk = 0; Kk < K; ++Kk) {
      const double Av = A[Kk];
      if (Av == 0.0)
        continue;
      const double *__restrict Bk = B + static_cast<size_t>(Kk) * N;
      for (unsigned J = 0; J < N; ++J)
        C[J] += Av * Bk[J];
    }
    return;
  }
  gemmAccNN(M, N, K, A, K, B, N, C, N);
}

/// Shared backward for matmul-shaped nodes: dA += dC . B^T and
/// dB += A^T . dC on the blocked kernels.
static void matmulBackward(TensorNode &Self, unsigned M, unsigned K,
                           unsigned N) {
  TensorNode &An = *Self.Inputs[0];
  TensorNode &Bn = *Self.Inputs[1];
  if (An.RequiresGrad)
    gemmAccNT(M, K, N, Self.Grad.data(), N, Bn.Data.data(), N,
              An.Grad.data(), K);
  if (Bn.RequiresGrad)
    gemmAccTN(K, N, M, An.Data.data(), K, Self.Grad.data(), N,
              Bn.Grad.data(), N);
}

Tensor nn::matmul(const Tensor &A, const Tensor &B) {
  assert(A.cols() == B.rows() && "matmul inner dims mismatch");
  unsigned M = A.rows(), K = A.cols(), N = B.cols();
  Tensor C = makeNode(M, N, {A, B}, "matmul");
  TensorNode &Node = *C.node();
  forwardProduct(M, N, K, A.data().data(), B.data().data(),
                 Node.Data.data());
  Node.Backward = [M, K, N](TensorNode &Self) {
    matmulBackward(Self, M, K, N);
  };
  return C;
}

Tensor nn::linear(const Tensor &A, const Tensor &W, const Tensor &Bias) {
  assert(A.cols() == W.rows() && "linear inner dims mismatch");
  assert(Bias.rows() == 1 && Bias.cols() == W.cols() &&
         "bias must be a 1xN row");
  unsigned M = A.rows(), K = A.cols(), N = W.cols();
  Tensor C = makeNode(M, N, {A, W, Bias}, "linear");
  TensorNode &Node = *C.node();
  const double *BiasRow = Bias.data().data();
  for (unsigned I = 0; I < M; ++I) {
    double *Ci = Node.Data.data() + static_cast<size_t>(I) * N;
    for (unsigned J = 0; J < N; ++J)
      Ci[J] = BiasRow[J];
  }
  forwardProduct(M, N, K, A.data().data(), W.data().data(),
                 Node.Data.data());
  Node.Backward = [M, K, N](TensorNode &Self) {
    matmulBackward(Self, M, K, N);
    TensorNode &BiasN = *Self.Inputs[2];
    if (!BiasN.RequiresGrad)
      return;
    for (unsigned I = 0; I < M; ++I) {
      const double *Gi = Self.Grad.data() + static_cast<size_t>(I) * N;
      for (unsigned J = 0; J < N; ++J)
        BiasN.Grad[J] += Gi[J];
    }
  };
  return C;
}

/// Shared helper for elementwise binary ops.
template <typename Fwd, typename Bwd>
static Tensor elementwiseBinary(const Tensor &A, const Tensor &B,
                                const char *Name, Fwd Forward, Bwd Backward) {
  assert(A.rows() == B.rows() && A.cols() == B.cols() &&
         "elementwise shape mismatch");
  Tensor C = makeNode(A.rows(), A.cols(), {A, B}, Name);
  TensorNode &Node = *C.node();
  for (size_t I = 0; I < Node.Data.size(); ++I)
    Node.Data[I] = Forward(A.data()[I], B.data()[I]);
  Node.Backward = [Backward](TensorNode &Self) {
    TensorNode &An = *Self.Inputs[0];
    TensorNode &Bn = *Self.Inputs[1];
    for (size_t I = 0; I < Self.Data.size(); ++I) {
      auto [Da, Db] = Backward(An.Data[I], Bn.Data[I]);
      if (An.RequiresGrad)
        An.Grad[I] += Self.Grad[I] * Da;
      if (Bn.RequiresGrad)
        Bn.Grad[I] += Self.Grad[I] * Db;
    }
  };
  return C;
}

/// Shared helper for elementwise unary ops. Backward receives (x, y).
template <typename Fwd, typename Bwd>
static Tensor elementwiseUnary(const Tensor &A, const char *Name, Fwd Forward,
                               Bwd Backward) {
  Tensor C = makeNode(A.rows(), A.cols(), {A}, Name);
  TensorNode &Node = *C.node();
  for (size_t I = 0; I < Node.Data.size(); ++I)
    Node.Data[I] = Forward(A.data()[I]);
  Node.Backward = [Backward](TensorNode &Self) {
    TensorNode &An = *Self.Inputs[0];
    if (!An.RequiresGrad)
      return;
    for (size_t I = 0; I < Self.Data.size(); ++I)
      An.Grad[I] += Self.Grad[I] * Backward(An.Data[I], Self.Data[I]);
  };
  return C;
}

Tensor nn::add(const Tensor &A, const Tensor &B) {
  return elementwiseBinary(
      A, B, "add", [](double X, double Y) { return X + Y; },
      [](double, double) { return std::pair<double, double>{1.0, 1.0}; });
}

Tensor nn::sub(const Tensor &A, const Tensor &B) {
  return elementwiseBinary(
      A, B, "sub", [](double X, double Y) { return X - Y; },
      [](double, double) { return std::pair<double, double>{1.0, -1.0}; });
}

Tensor nn::hadamard(const Tensor &A, const Tensor &B) {
  return elementwiseBinary(
      A, B, "hadamard", [](double X, double Y) { return X * Y; },
      [](double X, double Y) { return std::pair<double, double>{Y, X}; });
}

Tensor nn::addBias(const Tensor &A, const Tensor &Bias) {
  assert(Bias.rows() == 1 && Bias.cols() == A.cols() &&
         "bias must be a 1xN row");
  Tensor C = makeNode(A.rows(), A.cols(), {A, Bias}, "addBias");
  TensorNode &Node = *C.node();
  for (unsigned I = 0; I < A.rows(); ++I)
    for (unsigned J = 0; J < A.cols(); ++J)
      Node.at(I, J) = A.at(I, J) + Bias.at(0, J);
  Node.Backward = [](TensorNode &Self) {
    TensorNode &An = *Self.Inputs[0];
    TensorNode &Bn = *Self.Inputs[1];
    for (unsigned I = 0; I < Self.Rows; ++I)
      for (unsigned J = 0; J < Self.Cols; ++J) {
        double G = Self.gradAt(I, J);
        if (An.RequiresGrad)
          An.gradAt(I, J) += G;
        if (Bn.RequiresGrad)
          Bn.gradAt(0, J) += G;
      }
  };
  return C;
}

Tensor nn::scale(const Tensor &A, double Factor) {
  return elementwiseUnary(
      A, "scale", [Factor](double X) { return X * Factor; },
      [Factor](double, double) { return Factor; });
}

Tensor nn::relu(const Tensor &A) {
  return elementwiseUnary(
      A, "relu", [](double X) { return X > 0.0 ? X : 0.0; },
      [](double X, double) { return X > 0.0 ? 1.0 : 0.0; });
}

Tensor nn::tanhOp(const Tensor &A) {
  return elementwiseUnary(
      A, "tanh", [](double X) { return std::tanh(X); },
      [](double, double Y) { return 1.0 - Y * Y; });
}

Tensor nn::sigmoidOp(const Tensor &A) {
  return elementwiseUnary(
      A, "sigmoid", [](double X) { return 1.0 / (1.0 + std::exp(-X)); },
      [](double, double Y) { return Y * (1.0 - Y); });
}

Tensor nn::expOp(const Tensor &A) {
  return elementwiseUnary(
      A, "exp", [](double X) { return std::exp(X); },
      [](double, double Y) { return Y; });
}

Tensor nn::clamp(const Tensor &A, double Lo, double Hi) {
  return elementwiseUnary(
      A, "clamp",
      [Lo, Hi](double X) { return X < Lo ? Lo : (X > Hi ? Hi : X); },
      [Lo, Hi](double X, double) { return (X >= Lo && X <= Hi) ? 1.0 : 0.0; });
}

Tensor nn::minOp(const Tensor &A, const Tensor &B) {
  return elementwiseBinary(
      A, B, "min", [](double X, double Y) { return X < Y ? X : Y; },
      [](double X, double Y) {
        return X < Y ? std::pair<double, double>{1.0, 0.0}
                     : std::pair<double, double>{0.0, 1.0};
      });
}

Tensor nn::logSoftmaxRows(const Tensor &Logits, const Tensor &Mask) {
  std::vector<Tensor> Inputs = {Logits};
  if (Mask.valid()) {
    assert(Mask.rows() == Logits.rows() && Mask.cols() == Logits.cols() &&
           "mask shape mismatch");
    Inputs.push_back(Mask);
  }
  unsigned R = Logits.rows(), C = Logits.cols();
  Tensor Out = makeNode(R, C, Inputs, "logSoftmax");
  TensorNode &Node = *Out.node();
  const TensorNode *MaskNode = Mask.valid() ? Mask.node().get() : nullptr;

  auto MaskedAt = [&](unsigned I, unsigned J) {
    if (MaskNode && MaskNode->at(I, J) == 0.0)
      return MaskedLogit;
    return Logits.at(I, J);
  };

  for (unsigned I = 0; I < R; ++I) {
    double Max = MaskedLogit;
    for (unsigned J = 0; J < C; ++J)
      Max = std::max(Max, MaskedAt(I, J));
    double Sum = 0.0;
    for (unsigned J = 0; J < C; ++J)
      Sum += std::exp(MaskedAt(I, J) - Max);
    double LogSum = Max + std::log(Sum);
    for (unsigned J = 0; J < C; ++J)
      Node.at(I, J) = MaskedAt(I, J) - LogSum;
  }

  bool HasMask = MaskNode != nullptr;
  Node.Backward = [HasMask](TensorNode &Self) {
    TensorNode &In = *Self.Inputs[0];
    if (!In.RequiresGrad)
      return;
    const TensorNode *M = HasMask ? Self.Inputs[1].get() : nullptr;
    // d logits = dY - softmax * sum(dY) per row; masked entries get zero.
    for (unsigned I = 0; I < Self.Rows; ++I) {
      double GradSum = 0.0;
      for (unsigned J = 0; J < Self.Cols; ++J)
        GradSum += Self.gradAt(I, J);
      for (unsigned J = 0; J < Self.Cols; ++J) {
        if (M && M->at(I, J) == 0.0)
          continue;
        double P = std::exp(Self.at(I, J));
        In.gradAt(I, J) += Self.gradAt(I, J) - P * GradSum;
      }
    }
  };
  return Out;
}

Tensor nn::pick(const Tensor &A, unsigned Row, unsigned Col) {
  assert(Row < A.rows() && Col < A.cols() && "pick index out of range");
  Tensor Out = makeNode(1, 1, {A}, "pick");
  Out.node()->Data[0] = A.at(Row, Col);
  Out.node()->Backward = [Row, Col](TensorNode &Self) {
    TensorNode &In = *Self.Inputs[0];
    if (In.RequiresGrad)
      In.gradAt(Row, Col) += Self.Grad[0];
  };
  return Out;
}

Tensor nn::sumAll(const Tensor &A) {
  Tensor Out = makeNode(1, 1, {A}, "sum");
  double Sum = 0.0;
  for (double V : A.data())
    Sum += V;
  Out.node()->Data[0] = Sum;
  Out.node()->Backward = [](TensorNode &Self) {
    TensorNode &In = *Self.Inputs[0];
    if (!In.RequiresGrad)
      return;
    for (double &G : In.Grad)
      G += Self.Grad[0];
  };
  return Out;
}

Tensor nn::meanAll(const Tensor &A) {
  return scale(sumAll(A), 1.0 / static_cast<double>(A.size()));
}

Tensor nn::meanOf(const std::vector<Tensor> &Scalars) {
  assert(!Scalars.empty() && "meanOf requires at least one term");
  Tensor Out = makeNode(1, 1, Scalars, "meanOf");
  double Sum = 0.0;
  for (const Tensor &S : Scalars) {
    assert(S.size() == 1 && "meanOf takes scalars");
    Sum += S.item();
  }
  double InvN = 1.0 / static_cast<double>(Scalars.size());
  Out.node()->Data[0] = Sum * InvN;
  Out.node()->Backward = [InvN](TensorNode &Self) {
    for (auto &In : Self.Inputs)
      if (In->RequiresGrad)
        In->Grad[0] += Self.Grad[0] * InvN;
  };
  return Out;
}

Tensor nn::concatCols(const Tensor &A, const Tensor &B) {
  assert(A.rows() == 1 && B.rows() == 1 && "concatCols takes row vectors");
  unsigned N = A.cols(), M = B.cols();
  Tensor Out = makeNode(1, N + M, {A, B}, "concat");
  TensorNode &Node = *Out.node();
  for (unsigned J = 0; J < N; ++J)
    Node.at(0, J) = A.at(0, J);
  for (unsigned J = 0; J < M; ++J)
    Node.at(0, N + J) = B.at(0, J);
  Node.Backward = [N, M](TensorNode &Self) {
    TensorNode &An = *Self.Inputs[0];
    TensorNode &Bn = *Self.Inputs[1];
    if (An.RequiresGrad)
      for (unsigned J = 0; J < N; ++J)
        An.gradAt(0, J) += Self.gradAt(0, J);
    if (Bn.RequiresGrad)
      for (unsigned J = 0; J < M; ++J)
        Bn.gradAt(0, J) += Self.gradAt(0, N + J);
  };
  return Out;
}

Tensor nn::sliceCols(const Tensor &A, unsigned Start, unsigned Len) {
  assert(A.rows() == 1 && "sliceCols takes a row vector");
  assert(Start + Len <= A.cols() && "slice out of range");
  Tensor Out = makeNode(1, Len, {A}, "slice");
  TensorNode &Node = *Out.node();
  for (unsigned J = 0; J < Len; ++J)
    Node.at(0, J) = A.at(0, Start + J);
  Node.Backward = [Start, Len](TensorNode &Self) {
    TensorNode &In = *Self.Inputs[0];
    if (!In.RequiresGrad)
      return;
    for (unsigned J = 0; J < Len; ++J)
      In.gradAt(0, Start + J) += Self.gradAt(0, J);
  };
  return Out;
}

Tensor nn::entropyOfLogits(const Tensor &Logits, const Tensor &Mask) {
  // H = -sum p log p built from differentiable pieces so gradients flow
  // through the logits.
  Tensor LogP = logSoftmaxRows(Logits, Mask);
  Tensor P = expOp(LogP);
  Tensor NegPLogP = scale(hadamard(P, LogP), -1.0);
  // Masked entries have p == 0 and p*logp == 0 (exp(-1e30) underflows),
  // so summing everything is safe.
  return sumAll(NegPLogP);
}
