//===- Ops.cpp ------------------------------------------------------------===//

#include "nn/Ops.h"

#include "nn/Gemm.h"
#include "support/Error.h"

#include <cassert>
#include <cmath>

using namespace mlirrl;
using namespace mlirrl::nn;

/// Large negative logit standing in for -inf under masking; exp underflows
/// to zero and gradients stay finite.
static constexpr double MaskedLogit = -1e30;

/// Forward product into a zeroed buffer. Sparse activation rows (the
/// common shape: feature rows that are mostly zeros under masking and
/// padding, single or batched) take a sparse-aware axpy path; skipping
/// exact zeros contributes nothing and keeps every output element's
/// accumulation over k in ascending order, so the batched sparse path,
/// the single-row path and the blocked dense kernel all agree bitwise.
static void forwardProduct(unsigned M, unsigned N, unsigned K,
                           const double *A, const double *B, double *C) {
  auto SparseRow = [&](unsigned I) {
    const double *__restrict Ai = A + static_cast<size_t>(I) * K;
    double *__restrict Ci = C + static_cast<size_t>(I) * N;
    for (unsigned Kk = 0; Kk < K; ++Kk) {
      const double Av = Ai[Kk];
      if (Av == 0.0)
        continue;
      const double *__restrict Bk = B + static_cast<size_t>(Kk) * N;
      for (unsigned J = 0; J < N; ++J)
        Ci[J] += Av * Bk[J];
    }
  };
  if (M == 1) {
    SparseRow(0);
    return;
  }
  // Batched: pick the path per the measured density. The scan is ~N
  // times cheaper than the multiply it gates.
  size_t Nnz = 0;
  size_t Total = static_cast<size_t>(M) * K;
  for (size_t I = 0; I < Total; ++I)
    Nnz += A[I] != 0.0;
  if (Nnz * 2 < Total) {
    for (unsigned I = 0; I < M; ++I)
      SparseRow(I);
    return;
  }
  gemmAccNN(M, N, K, A, K, B, N, C, N);
}

/// Shared backward for matmul-shaped nodes: dA += dC . B^T and
/// dB += A^T . dC on the blocked kernels.
static void matmulBackward(TensorNode &Self, unsigned M, unsigned K,
                           unsigned N) {
  TensorNode &An = *Self.Inputs[0];
  TensorNode &Bn = *Self.Inputs[1];
  if (An.RequiresGrad)
    gemmAccNT(M, K, N, Self.Grad.data(), N, Bn.Data.data(), N,
              An.Grad.data(), K);
  if (Bn.RequiresGrad)
    gemmAccTN(K, N, M, An.Data.data(), K, Self.Grad.data(), N,
              Bn.Grad.data(), N);
}

Tensor nn::matmul(const Tensor &A, const Tensor &B) {
  assert(A.cols() == B.rows() && "matmul inner dims mismatch");
  unsigned M = A.rows(), K = A.cols(), N = B.cols();
  Tensor C = makeNode(M, N, {A, B}, "matmul");
  TensorNode &Node = *C.node();
  forwardProduct(M, N, K, A.data().data(), B.data().data(),
                 Node.Data.data());
  Node.Backward = [M, K, N](TensorNode &Self) {
    matmulBackward(Self, M, K, N);
  };
  return C;
}

Tensor nn::linear(const Tensor &A, const Tensor &W, const Tensor &Bias) {
  assert(A.cols() == W.rows() && "linear inner dims mismatch");
  assert(Bias.rows() == 1 && Bias.cols() == W.cols() &&
         "bias must be a 1xN row");
  unsigned M = A.rows(), K = A.cols(), N = W.cols();
  Tensor C = makeNode(M, N, {A, W, Bias}, "linear");
  TensorNode &Node = *C.node();
  const double *BiasRow = Bias.data().data();
  for (unsigned I = 0; I < M; ++I) {
    double *Ci = Node.Data.data() + static_cast<size_t>(I) * N;
    for (unsigned J = 0; J < N; ++J)
      Ci[J] = BiasRow[J];
  }
  forwardProduct(M, N, K, A.data().data(), W.data().data(),
                 Node.Data.data());
  Node.Backward = [M, K, N](TensorNode &Self) {
    matmulBackward(Self, M, K, N);
    TensorNode &BiasN = *Self.Inputs[2];
    if (!BiasN.RequiresGrad)
      return;
    for (unsigned I = 0; I < M; ++I) {
      const double *Gi = Self.Grad.data() + static_cast<size_t>(I) * N;
      for (unsigned J = 0; J < N; ++J)
        BiasN.Grad[J] += Gi[J];
    }
  };
  return C;
}

Tensor nn::linearSplit(const Tensor &X, const Tensor &H, const Tensor &W,
                       const Tensor &Bias) {
  assert(X.rows() == H.rows() && "linearSplit row-count mismatch");
  assert(X.cols() + H.cols() == W.rows() && "linearSplit inner dims mismatch");
  assert(Bias.rows() == 1 && Bias.cols() == W.cols() &&
         "bias must be a 1xN row");
  unsigned M = X.rows(), F = X.cols(), G = H.cols(), N = W.cols();
  Tensor C = makeNode(M, N, {X, H, W, Bias}, "linearSplit");
  TensorNode &Node = *C.node();
  const double *BiasRow = Bias.data().data();
  for (unsigned I = 0; I < M; ++I) {
    double *Ci = Node.Data.data() + static_cast<size_t>(I) * N;
    for (unsigned J = 0; J < N; ++J)
      Ci[J] = BiasRow[J];
  }
  // X against W's first F rows, then H against the remaining G rows:
  // the same k-ascending accumulation the concatenated product runs.
  forwardProduct(M, N, F, X.data().data(), W.data().data(),
                 Node.Data.data());
  forwardProduct(M, N, G, H.data().data(),
                 W.data().data() + static_cast<size_t>(F) * N,
                 Node.Data.data());
  Node.Backward = [M, F, G, N](TensorNode &Self) {
    TensorNode &Xn = *Self.Inputs[0];
    TensorNode &Hn = *Self.Inputs[1];
    TensorNode &Wn = *Self.Inputs[2];
    TensorNode &BiasN = *Self.Inputs[3];
    if (Xn.RequiresGrad)
      gemmAccNT(M, F, N, Self.Grad.data(), N, Wn.Data.data(), N,
                Xn.Grad.data(), F);
    if (Hn.RequiresGrad)
      gemmAccNT(M, G, N, Self.Grad.data(), N,
                Wn.Data.data() + static_cast<size_t>(F) * N, N,
                Hn.Grad.data(), G);
    if (Wn.RequiresGrad) {
      gemmAccTN(F, N, M, Xn.Data.data(), F, Self.Grad.data(), N,
                Wn.Grad.data(), N);
      gemmAccTN(G, N, M, Hn.Data.data(), G, Self.Grad.data(), N,
                Wn.Grad.data() + static_cast<size_t>(F) * N, N);
    }
    if (BiasN.RequiresGrad)
      for (unsigned I = 0; I < M; ++I) {
        const double *Gi = Self.Grad.data() + static_cast<size_t>(I) * N;
        for (unsigned J = 0; J < N; ++J)
          BiasN.Grad[J] += Gi[J];
      }
  };
  return C;
}

SparseRows SparseRows::fromRows(
    const std::vector<const std::vector<double> *> &Sources) {
  SparseRows X;
  X.Rows = static_cast<unsigned>(Sources.size());
  X.Cols = Sources.empty()
               ? 0
               : static_cast<unsigned>(Sources.front()->size());
  X.RowEntries.resize(X.Rows);
  for (unsigned I = 0; I < X.Rows; ++I) {
    const std::vector<double> &Row = *Sources[I];
    assert(Row.size() == X.Cols && "ragged sparse batch");
    for (unsigned J = 0; J < X.Cols; ++J)
      if (Row[J] != 0.0)
        X.RowEntries[I].push_back({J, Row[J]});
  }
  return X;
}

Tensor nn::linearSplitSparse(const std::shared_ptr<const SparseRows> &X,
                             const Tensor &H, const Tensor &W,
                             const Tensor &Bias) {
  assert(X && X->Rows == H.rows() && "linearSplitSparse row-count mismatch");
  assert(X->Cols + H.cols() == W.rows() &&
         "linearSplitSparse inner dims mismatch");
  assert(Bias.rows() == 1 && Bias.cols() == W.cols() &&
         "bias must be a 1xN row");
  unsigned M = X->Rows, F = X->Cols, G = H.cols(), N = W.cols();
  Tensor C = makeNode(M, N, {H, W, Bias}, "linearSplitSparse");
  TensorNode &Node = *C.node();
  const double *BiasRow = Bias.data().data();
  const double *Wd = W.data().data();
  for (unsigned I = 0; I < M; ++I) {
    double *Ci = Node.Data.data() + static_cast<size_t>(I) * N;
    for (unsigned J = 0; J < N; ++J)
      Ci[J] = BiasRow[J];
    // X part, nonzero columns only, k ascending (the dense product's
    // order with its zero terms dropped).
    for (const SparseRows::Entry &E : X->RowEntries[I]) {
      const double *Wk = Wd + static_cast<size_t>(E.Col) * N;
      for (unsigned J = 0; J < N; ++J)
        Ci[J] += E.Value * Wk[J];
    }
  }
  forwardProduct(M, N, G, H.data().data(),
                 Wd + static_cast<size_t>(F) * N, Node.Data.data());
  Node.Backward = [X, M, F, G, N](TensorNode &Self) {
    TensorNode &Hn = *Self.Inputs[0];
    TensorNode &Wn = *Self.Inputs[1];
    TensorNode &BiasN = *Self.Inputs[2];
    if (Hn.RequiresGrad)
      gemmAccNT(M, G, N, Self.Grad.data(), N,
                Wn.Data.data() + static_cast<size_t>(F) * N, N,
                Hn.Grad.data(), G);
    if (Wn.RequiresGrad) {
      // dW[k] += sum_i X[i][k] * dC[i]: rows ascending, so each element
      // accumulates its samples in the same order the dense transposed
      // product does -- but only nonzero feature rows are touched.
      for (unsigned I = 0; I < M; ++I) {
        const double *Gi = Self.Grad.data() + static_cast<size_t>(I) * N;
        for (const SparseRows::Entry &E : X->RowEntries[I]) {
          double *Wk = Wn.Grad.data() + static_cast<size_t>(E.Col) * N;
          for (unsigned J = 0; J < N; ++J)
            Wk[J] += E.Value * Gi[J];
        }
      }
      gemmAccTN(G, N, M, Hn.Data.data(), G, Self.Grad.data(), N,
                Wn.Grad.data() + static_cast<size_t>(F) * N, N);
    }
    if (BiasN.RequiresGrad)
      for (unsigned I = 0; I < M; ++I) {
        const double *Gi = Self.Grad.data() + static_cast<size_t>(I) * N;
        for (unsigned J = 0; J < N; ++J)
          BiasN.Grad[J] += Gi[J];
      }
  };
  return C;
}

/// Shared helper for elementwise binary ops.
template <typename Fwd, typename Bwd>
static Tensor elementwiseBinary(const Tensor &A, const Tensor &B,
                                const char *Name, Fwd Forward, Bwd Backward) {
  assert(A.rows() == B.rows() && A.cols() == B.cols() &&
         "elementwise shape mismatch");
  Tensor C = makeNode(A.rows(), A.cols(), {A, B}, Name);
  TensorNode &Node = *C.node();
  for (size_t I = 0; I < Node.Data.size(); ++I)
    Node.Data[I] = Forward(A.data()[I], B.data()[I]);
  Node.Backward = [Backward](TensorNode &Self) {
    TensorNode &An = *Self.Inputs[0];
    TensorNode &Bn = *Self.Inputs[1];
    for (size_t I = 0; I < Self.Data.size(); ++I) {
      auto [Da, Db] = Backward(An.Data[I], Bn.Data[I]);
      if (An.RequiresGrad)
        An.Grad[I] += Self.Grad[I] * Da;
      if (Bn.RequiresGrad)
        Bn.Grad[I] += Self.Grad[I] * Db;
    }
  };
  return C;
}

/// Shared helper for elementwise unary ops. Backward receives (x, y).
template <typename Fwd, typename Bwd>
static Tensor elementwiseUnary(const Tensor &A, const char *Name, Fwd Forward,
                               Bwd Backward) {
  Tensor C = makeNode(A.rows(), A.cols(), {A}, Name);
  TensorNode &Node = *C.node();
  for (size_t I = 0; I < Node.Data.size(); ++I)
    Node.Data[I] = Forward(A.data()[I]);
  Node.Backward = [Backward](TensorNode &Self) {
    TensorNode &An = *Self.Inputs[0];
    if (!An.RequiresGrad)
      return;
    for (size_t I = 0; I < Self.Data.size(); ++I)
      An.Grad[I] += Self.Grad[I] * Backward(An.Data[I], Self.Data[I]);
  };
  return C;
}

Tensor nn::add(const Tensor &A, const Tensor &B) {
  return elementwiseBinary(
      A, B, "add", [](double X, double Y) { return X + Y; },
      [](double, double) { return std::pair<double, double>{1.0, 1.0}; });
}

Tensor nn::sub(const Tensor &A, const Tensor &B) {
  return elementwiseBinary(
      A, B, "sub", [](double X, double Y) { return X - Y; },
      [](double, double) { return std::pair<double, double>{1.0, -1.0}; });
}

Tensor nn::hadamard(const Tensor &A, const Tensor &B) {
  return elementwiseBinary(
      A, B, "hadamard", [](double X, double Y) { return X * Y; },
      [](double X, double Y) { return std::pair<double, double>{Y, X}; });
}

Tensor nn::addBias(const Tensor &A, const Tensor &Bias) {
  assert(Bias.rows() == 1 && Bias.cols() == A.cols() &&
         "bias must be a 1xN row");
  Tensor C = makeNode(A.rows(), A.cols(), {A, Bias}, "addBias");
  TensorNode &Node = *C.node();
  for (unsigned I = 0; I < A.rows(); ++I)
    for (unsigned J = 0; J < A.cols(); ++J)
      Node.at(I, J) = A.at(I, J) + Bias.at(0, J);
  Node.Backward = [](TensorNode &Self) {
    TensorNode &An = *Self.Inputs[0];
    TensorNode &Bn = *Self.Inputs[1];
    for (unsigned I = 0; I < Self.Rows; ++I)
      for (unsigned J = 0; J < Self.Cols; ++J) {
        double G = Self.gradAt(I, J);
        if (An.RequiresGrad)
          An.gradAt(I, J) += G;
        if (Bn.RequiresGrad)
          Bn.gradAt(0, J) += G;
      }
  };
  return C;
}

Tensor nn::scale(const Tensor &A, double Factor) {
  return elementwiseUnary(
      A, "scale", [Factor](double X) { return X * Factor; },
      [Factor](double, double) { return Factor; });
}

Tensor nn::relu(const Tensor &A) {
  return elementwiseUnary(
      A, "relu", [](double X) { return X > 0.0 ? X : 0.0; },
      [](double X, double) { return X > 0.0 ? 1.0 : 0.0; });
}

Tensor nn::tanhOp(const Tensor &A) {
  return elementwiseUnary(
      A, "tanh", [](double X) { return std::tanh(X); },
      [](double, double Y) { return 1.0 - Y * Y; });
}

Tensor nn::sigmoidOp(const Tensor &A) {
  return elementwiseUnary(
      A, "sigmoid", [](double X) { return 1.0 / (1.0 + std::exp(-X)); },
      [](double, double Y) { return Y * (1.0 - Y); });
}

Tensor nn::expOp(const Tensor &A) {
  return elementwiseUnary(
      A, "exp", [](double X) { return std::exp(X); },
      [](double, double Y) { return Y; });
}

Tensor nn::clamp(const Tensor &A, double Lo, double Hi) {
  return elementwiseUnary(
      A, "clamp",
      [Lo, Hi](double X) { return X < Lo ? Lo : (X > Hi ? Hi : X); },
      [Lo, Hi](double X, double) { return (X >= Lo && X <= Hi) ? 1.0 : 0.0; });
}

Tensor nn::minOp(const Tensor &A, const Tensor &B) {
  return elementwiseBinary(
      A, B, "min", [](double X, double Y) { return X < Y ? X : Y; },
      [](double X, double Y) {
        return X < Y ? std::pair<double, double>{1.0, 0.0}
                     : std::pair<double, double>{0.0, 1.0};
      });
}

Tensor nn::logSoftmaxRows(const Tensor &Logits, const Tensor &Mask) {
  std::vector<Tensor> Inputs = {Logits};
  if (Mask.valid()) {
    assert(Mask.rows() == Logits.rows() && Mask.cols() == Logits.cols() &&
           "mask shape mismatch");
    Inputs.push_back(Mask);
  }
  unsigned R = Logits.rows(), C = Logits.cols();
  Tensor Out = makeNode(R, C, Inputs, "logSoftmax");
  TensorNode &Node = *Out.node();
  const TensorNode *MaskNode = Mask.valid() ? Mask.node().get() : nullptr;

  auto MaskedAt = [&](unsigned I, unsigned J) {
    if (MaskNode && MaskNode->at(I, J) == 0.0)
      return MaskedLogit;
    return Logits.at(I, J);
  };

  for (unsigned I = 0; I < R; ++I) {
    double Max = MaskedLogit;
    for (unsigned J = 0; J < C; ++J)
      Max = std::max(Max, MaskedAt(I, J));
    double Sum = 0.0;
    for (unsigned J = 0; J < C; ++J)
      Sum += std::exp(MaskedAt(I, J) - Max);
    double LogSum = Max + std::log(Sum);
    for (unsigned J = 0; J < C; ++J)
      Node.at(I, J) = MaskedAt(I, J) - LogSum;
  }

  bool HasMask = MaskNode != nullptr;
  Node.Backward = [HasMask](TensorNode &Self) {
    TensorNode &In = *Self.Inputs[0];
    if (!In.RequiresGrad)
      return;
    const TensorNode *M = HasMask ? Self.Inputs[1].get() : nullptr;
    // d logits = dY - softmax * sum(dY) per row; masked entries get zero.
    for (unsigned I = 0; I < Self.Rows; ++I) {
      double GradSum = 0.0;
      for (unsigned J = 0; J < Self.Cols; ++J)
        GradSum += Self.gradAt(I, J);
      for (unsigned J = 0; J < Self.Cols; ++J) {
        if (M && M->at(I, J) == 0.0)
          continue;
        double P = std::exp(Self.at(I, J));
        In.gradAt(I, J) += Self.gradAt(I, J) - P * GradSum;
      }
    }
  };
  return Out;
}

Tensor nn::pick(const Tensor &A, unsigned Row, unsigned Col) {
  assert(Row < A.rows() && Col < A.cols() && "pick index out of range");
  Tensor Out = makeNode(1, 1, {A}, "pick");
  Out.node()->Data[0] = A.at(Row, Col);
  Out.node()->Backward = [Row, Col](TensorNode &Self) {
    TensorNode &In = *Self.Inputs[0];
    if (In.RequiresGrad)
      In.gradAt(Row, Col) += Self.Grad[0];
  };
  return Out;
}

Tensor nn::sumAll(const Tensor &A) {
  Tensor Out = makeNode(1, 1, {A}, "sum");
  double Sum = 0.0;
  for (double V : A.data())
    Sum += V;
  Out.node()->Data[0] = Sum;
  Out.node()->Backward = [](TensorNode &Self) {
    TensorNode &In = *Self.Inputs[0];
    if (!In.RequiresGrad)
      return;
    for (double &G : In.Grad)
      G += Self.Grad[0];
  };
  return Out;
}

Tensor nn::meanAll(const Tensor &A) {
  return scale(sumAll(A), 1.0 / static_cast<double>(A.size()));
}

Tensor nn::meanOf(const std::vector<Tensor> &Scalars) {
  assert(!Scalars.empty() && "meanOf requires at least one term");
  Tensor Out = makeNode(1, 1, Scalars, "meanOf");
  double Sum = 0.0;
  for (const Tensor &S : Scalars) {
    assert(S.size() == 1 && "meanOf takes scalars");
    Sum += S.item();
  }
  double InvN = 1.0 / static_cast<double>(Scalars.size());
  Out.node()->Data[0] = Sum * InvN;
  Out.node()->Backward = [InvN](TensorNode &Self) {
    for (auto &In : Self.Inputs)
      if (In->RequiresGrad)
        In->Grad[0] += Self.Grad[0] * InvN;
  };
  return Out;
}

Tensor nn::concatCols(const Tensor &A, const Tensor &B) {
  assert(A.rows() == B.rows() && "concatCols row-count mismatch");
  unsigned R = A.rows(), N = A.cols(), M = B.cols();
  Tensor Out = makeNode(R, N + M, {A, B}, "concat");
  TensorNode &Node = *Out.node();
  for (unsigned I = 0; I < R; ++I) {
    for (unsigned J = 0; J < N; ++J)
      Node.at(I, J) = A.at(I, J);
    for (unsigned J = 0; J < M; ++J)
      Node.at(I, N + J) = B.at(I, J);
  }
  Node.Backward = [N, M](TensorNode &Self) {
    TensorNode &An = *Self.Inputs[0];
    TensorNode &Bn = *Self.Inputs[1];
    for (unsigned I = 0; I < Self.Rows; ++I) {
      if (An.RequiresGrad)
        for (unsigned J = 0; J < N; ++J)
          An.gradAt(I, J) += Self.gradAt(I, J);
      if (Bn.RequiresGrad)
        for (unsigned J = 0; J < M; ++J)
          Bn.gradAt(I, J) += Self.gradAt(I, N + J);
    }
  };
  return Out;
}

Tensor nn::sliceCols(const Tensor &A, unsigned Start, unsigned Len) {
  assert(Start + Len <= A.cols() && "slice out of range");
  unsigned R = A.rows();
  Tensor Out = makeNode(R, Len, {A}, "slice");
  TensorNode &Node = *Out.node();
  for (unsigned I = 0; I < R; ++I)
    for (unsigned J = 0; J < Len; ++J)
      Node.at(I, J) = A.at(I, Start + J);
  Node.Backward = [Start, Len](TensorNode &Self) {
    TensorNode &In = *Self.Inputs[0];
    if (!In.RequiresGrad)
      return;
    for (unsigned I = 0; I < Self.Rows; ++I)
      for (unsigned J = 0; J < Len; ++J)
        In.gradAt(I, Start + J) += Self.gradAt(I, J);
  };
  return Out;
}

Tensor nn::pickPerRow(const Tensor &A, const std::vector<int> &Cols) {
  assert(Cols.size() == A.rows() && "one column index per row");
  unsigned R = A.rows();
  Tensor Out = makeNode(R, 1, {A}, "pickPerRow");
  TensorNode &Node = *Out.node();
  for (unsigned I = 0; I < R; ++I) {
    assert(Cols[I] < static_cast<int>(A.cols()) && "pick column out of range");
    Node.at(I, 0) = Cols[I] < 0 ? 0.0 : A.at(I, static_cast<unsigned>(Cols[I]));
  }
  Node.Backward = [Cols](TensorNode &Self) {
    TensorNode &In = *Self.Inputs[0];
    if (!In.RequiresGrad)
      return;
    for (unsigned I = 0; I < Self.Rows; ++I)
      if (Cols[I] >= 0)
        In.gradAt(I, static_cast<unsigned>(Cols[I])) += Self.gradAt(I, 0);
  };
  return Out;
}

Tensor nn::rowSums(const Tensor &A) {
  unsigned R = A.rows(), C = A.cols();
  Tensor Out = makeNode(R, 1, {A}, "rowSums");
  TensorNode &Node = *Out.node();
  for (unsigned I = 0; I < R; ++I) {
    double Sum = 0.0;
    for (unsigned J = 0; J < C; ++J)
      Sum += A.at(I, J);
    Node.at(I, 0) = Sum;
  }
  Node.Backward = [](TensorNode &Self) {
    TensorNode &In = *Self.Inputs[0];
    if (!In.RequiresGrad)
      return;
    for (unsigned I = 0; I < Self.Rows; ++I)
      for (unsigned J = 0; J < In.Cols; ++J)
        In.gradAt(I, J) += Self.gradAt(I, 0);
  };
  return Out;
}

Tensor nn::entropyRowsOfLogits(const Tensor &Logits, const Tensor &Mask) {
  // Per-row H = -sum_j p log p; masked entries have p == 0 and
  // p*logp == 0 (exp(-1e30) underflows), so the row sum is exact.
  Tensor LogP = logSoftmaxRows(Logits, Mask);
  Tensor P = expOp(LogP);
  return rowSums(scale(hadamard(P, LogP), -1.0));
}

Tensor nn::entropyOfLogits(const Tensor &Logits, const Tensor &Mask) {
  // H = -sum p log p built from differentiable pieces so gradients flow
  // through the logits.
  Tensor LogP = logSoftmaxRows(Logits, Mask);
  Tensor P = expOp(LogP);
  Tensor NegPLogP = scale(hadamard(P, LogP), -1.0);
  // Masked entries have p == 0 and p*logp == 0 (exp(-1e30) underflows),
  // so summing everything is safe.
  return sumAll(NegPLogP);
}
