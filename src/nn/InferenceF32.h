//===- InferenceF32.h - Float32 inference mirrors ----------------*- C++-*-===//
///
/// \file
/// Float32 mirrors of the forward-only layer stack, for the opt-in f32
/// greedy-inference path (MlirRlOptions::Inference). Parameters train
/// in double; these types hold packed float copies converted once per
/// parameter version, and their forward passes run the float GEMM
/// kernels of nn/Gemm.h (the explicitly SIMD NN micro-kernel at twice
/// the lane width of double).
///
/// Nothing here is differentiable and nothing feeds training: results
/// track the f64 forward pass to float relative error (bounded by
/// tests/rl/InferenceF32Test), which is enough for greedy argmax
/// inference but deliberately kept away from the bitwise-deterministic
/// training contract.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_NN_INFERENCEF32_H
#define MLIRRL_NN_INFERENCEF32_H

#include "nn/Lstm.h"
#include "support/AlignedAlloc.h"

#include <memory>
#include <vector>

namespace mlirrl {
namespace nn {

/// Float buffer with the same 64-byte-aligned allocation the double
/// tensor buffers use.
using FBuffer = std::vector<float, AlignedAllocator<float, BufferAlignment>>;

/// A dense row-major float matrix. Plain storage, no graph.
struct MatF32 {
  unsigned Rows = 0;
  unsigned Cols = 0;
  FBuffer Data;

  MatF32() = default;
  MatF32(unsigned Rows, unsigned Cols)
      : Rows(Rows), Cols(Cols),
        Data(static_cast<size_t>(Rows) * Cols, 0.0f) {}

  /// Packs a double tensor's values, narrowing each to float.
  static MatF32 fromTensor(const Tensor &T);

  float *row(unsigned R) { return Data.data() + static_cast<size_t>(R) * Cols; }
  const float *row(unsigned R) const {
    return Data.data() + static_cast<size_t>(R) * Cols;
  }
  float at(unsigned R, unsigned C) const {
    return Data[static_cast<size_t>(R) * Cols + C];
  }
};

/// Packed float copy of a Linear layer (W: In x Out, B: 1 x Out).
struct LinearF32 {
  MatF32 W;
  MatF32 B;

  static LinearF32 pack(const Linear &L);

  /// Y(B x Out) = X(B x In) . W + bias broadcast over rows.
  MatF32 forward(const MatF32 &X) const;
};

/// Packed float MLP: the Linear+ReLU backbone stack.
struct MlpF32 {
  std::vector<LinearF32> Layers;

  static MlpF32 pack(const Mlp &M);

  MatF32 forward(const MatF32 &X) const;
};

/// The fused split product in float: Y = [X, H] . W + bias without
/// materializing the concatenation, with X in the batch's compressed
/// sparse form (values narrowed to float on the fly). The float
/// counterpart of linearSplitSparse's forward half.
MatF32 linearSplitSparseF32(const SparseRows &X, const MatF32 &H,
                            const LinearF32 &L);

/// Packed float LSTM cell; runSequenceSparse mirrors
/// LstmCell::runSequenceSparse (producer row, consumer row, final
/// hidden state is the embedding).
struct LstmCellF32 {
  unsigned Hidden = 0;
  LinearF32 InputGate, ForgetGate, CellGate, OutputGate;

  static LstmCellF32 pack(const LstmCell &Cell);

  MatF32 runSequenceSparse(
      const std::vector<std::shared_ptr<const SparseRows>> &Sequence) const;
};

} // namespace nn
} // namespace mlirrl

#endif // MLIRRL_NN_INFERENCEF32_H
