//===- GemmKernel.h - Dtype-generic blocked GEMM kernels ---------*- C++-*-===//
///
/// \file
/// The dtype-generic kernel layer under nn/Gemm.h: cache-blocked,
/// register-tiled accumulate kernels templated on the element type,
/// instantiated for double (training; bitwise-stable) and float (the
/// vectorized inference path).
///
/// Two inner kernels exist for the NN (C += A.B) product:
///
///  - a portable scalar micro-kernel -- the reference semantics; the
///    double instantiation is the pre-dtype-refactor kernel verbatim,
///    which is what keeps the training path bitwise-identical across
///    the refactor; and
///  - an explicitly SIMD micro-kernel built on GNU vector extensions
///    (32-byte generic vectors, lowered by the compiler to whatever the
///    target has: AVX2, SSE2, NEON, or scalar code).
///
/// Both accumulate every C element over k in ascending order; the SIMD
/// kernel only widens the *j* axis, where lanes are independent
/// accumulator chains, so the two kernels are bitwise-identical on any
/// input for both dtypes (the gemm_smoke example and GemmTest assert
/// exact equality at runtime -- the guard against a miscompiled or
/// misdispatched SIMD path). Which one runs is a runtime dispatch
/// (nn::setGemmKernel); Auto resolves to SIMD where the extension
/// exists.
///
/// The NT (A.B^T) and TN (A^T.B) kernels are k-reduction respectively
/// rank-1-update shaped; they keep the scalar-ordered template only
/// (they carry the backward pass, which stays f64, and their inner
/// loops are already unit-stride for the autovectorizer).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_NN_GEMMKERNEL_H
#define MLIRRL_NN_GEMMKERNEL_H

#include <algorithm>
#include <cstddef>

#if defined(__GNUC__) || defined(__clang__)
#define MLIRRL_GEMM_HAVE_SIMD 1
#else
#define MLIRRL_GEMM_HAVE_SIMD 0
#endif

namespace mlirrl {
namespace nn {
namespace detail {

/// Cache-blocking parameters, in elements: a KC x NC panel of B stays
/// cache-resident while MC rows of A stream against it; the MR-row
/// register tile amortizes each B load over MR accumulator rows. The
/// element counts are shared by both dtypes (the float panels are half
/// the bytes, which only helps).
constexpr unsigned MC = 64;
constexpr unsigned KC = 256;
constexpr unsigned NC = 512;
constexpr unsigned MR = 4;

#if MLIRRL_GEMM_HAVE_SIMD
/// Generic SIMD vector of T: 32 bytes wide (4 doubles / 8 floats).
/// 32 beats 64 measurably on AVX-512 hardware here (GCC's 64-byte
/// lowering plus zmm frequency effects); on narrower ISAs the compiler
/// splits the vector, which costs nothing. The alignment override makes
/// loads/stores through casted pointers legal at element alignment (the
/// compiler emits unaligned moves); rows at arbitrary leading
/// dimensions are never vector-aligned.
template <typename T> struct SimdTraits {
  static constexpr unsigned Bytes = 32;
  static constexpr unsigned Lanes = Bytes / sizeof(T);
  typedef T Vec __attribute__((vector_size(Bytes), aligned(alignof(T))));
};
#endif

/// Portable scalar micro-kernel for C += A.B: C rows [i0, i0+Rows) x
/// [j0, j1) accumulate the K-panel [k0, k1). Rows <= MR; the j loop is
/// the (auto-)vectorized axis and each B row loaded from the panel
/// feeds Rows accumulator rows. This is the double kernel the repo
/// trained on before the dtype refactor, verbatim.
template <typename T>
inline void microNNScalar(unsigned Rows, unsigned j0, unsigned j1, unsigned k0,
                          unsigned k1, const T *__restrict A, unsigned LdA,
                          const T *__restrict B, unsigned LdB, T *__restrict C,
                          unsigned LdC, unsigned i0) {
  switch (Rows) {
  case 4:
    for (unsigned K = k0; K < k1; ++K) {
      const T A0 = A[(i0 + 0) * LdA + K];
      const T A1 = A[(i0 + 1) * LdA + K];
      const T A2 = A[(i0 + 2) * LdA + K];
      const T A3 = A[(i0 + 3) * LdA + K];
      const T *__restrict Bk = B + static_cast<size_t>(K) * LdB;
      T *__restrict C0 = C + static_cast<size_t>(i0 + 0) * LdC;
      T *__restrict C1 = C + static_cast<size_t>(i0 + 1) * LdC;
      T *__restrict C2 = C + static_cast<size_t>(i0 + 2) * LdC;
      T *__restrict C3 = C + static_cast<size_t>(i0 + 3) * LdC;
      for (unsigned J = j0; J < j1; ++J) {
        const T Bv = Bk[J];
        C0[J] += A0 * Bv;
        C1[J] += A1 * Bv;
        C2[J] += A2 * Bv;
        C3[J] += A3 * Bv;
      }
    }
    break;
  default:
    for (unsigned I = i0; I < i0 + Rows; ++I) {
      T *__restrict Ci = C + static_cast<size_t>(I) * LdC;
      for (unsigned K = k0; K < k1; ++K) {
        const T Av = A[I * LdA + K];
        const T *__restrict Bk = B + static_cast<size_t>(K) * LdB;
        for (unsigned J = j0; J < j1; ++J)
          Ci[J] += Av * Bk[J];
      }
    }
    break;
  }
}

#if MLIRRL_GEMM_HAVE_SIMD

/// Explicit-SIMD micro-kernel: identical accumulation semantics to
/// microNNScalar (each C element's k chain is untouched; only the j
/// axis is widened into independent lanes), so its output is required
/// to be bitwise-identical -- the j tail runs the same scalar
/// expression the scalar kernel runs.
template <typename T>
inline void microNNSimd(unsigned Rows, unsigned j0, unsigned j1, unsigned k0,
                        unsigned k1, const T *__restrict A, unsigned LdA,
                        const T *__restrict B, unsigned LdB, T *__restrict C,
                        unsigned LdC, unsigned i0) {
  using Vec = typename SimdTraits<T>::Vec;
  constexpr unsigned L = SimdTraits<T>::Lanes;
  if (Rows == MR) {
    T *__restrict C0 = C + static_cast<size_t>(i0 + 0) * LdC;
    T *__restrict C1 = C + static_cast<size_t>(i0 + 1) * LdC;
    T *__restrict C2 = C + static_cast<size_t>(i0 + 2) * LdC;
    T *__restrict C3 = C + static_cast<size_t>(i0 + 3) * LdC;
    const T *__restrict A0 = A + static_cast<size_t>(i0 + 0) * LdA;
    const T *__restrict A1 = A + static_cast<size_t>(i0 + 1) * LdA;
    const T *__restrict A2 = A + static_cast<size_t>(i0 + 2) * LdA;
    const T *__restrict A3 = A + static_cast<size_t>(i0 + 3) * LdA;
    unsigned J = j0;
    // Outer-product body: a 4-row x 2-vector C tile lives in registers
    // across the whole K panel (8 accumulators + 2 B loads + 4 A
    // broadcasts = within budget of a 16-register ISA), so C traffic
    // drops from per-k to per-panel. Holding an element's partial sum
    // in a register instead of storing/reloading it every k does not
    // reorder its k chain -- this stays bitwise-equal to the scalar
    // kernel.
    for (; J + 2 * L <= j1; J += 2 * L) {
      Vec S00 = *reinterpret_cast<const Vec *>(C0 + J);
      Vec S01 = *reinterpret_cast<const Vec *>(C0 + J + L);
      Vec S10 = *reinterpret_cast<const Vec *>(C1 + J);
      Vec S11 = *reinterpret_cast<const Vec *>(C1 + J + L);
      Vec S20 = *reinterpret_cast<const Vec *>(C2 + J);
      Vec S21 = *reinterpret_cast<const Vec *>(C2 + J + L);
      Vec S30 = *reinterpret_cast<const Vec *>(C3 + J);
      Vec S31 = *reinterpret_cast<const Vec *>(C3 + J + L);
      for (unsigned K = k0; K < k1; ++K) {
        const T *__restrict Bk = B + static_cast<size_t>(K) * LdB;
        const Vec B0 = *reinterpret_cast<const Vec *>(Bk + J);
        const Vec B1 = *reinterpret_cast<const Vec *>(Bk + J + L);
        const Vec VA0 = A0[K] - Vec{}; // broadcast
        const Vec VA1 = A1[K] - Vec{};
        const Vec VA2 = A2[K] - Vec{};
        const Vec VA3 = A3[K] - Vec{};
        S00 += VA0 * B0;
        S01 += VA0 * B1;
        S10 += VA1 * B0;
        S11 += VA1 * B1;
        S20 += VA2 * B0;
        S21 += VA2 * B1;
        S30 += VA3 * B0;
        S31 += VA3 * B1;
      }
      *reinterpret_cast<Vec *>(C0 + J) = S00;
      *reinterpret_cast<Vec *>(C0 + J + L) = S01;
      *reinterpret_cast<Vec *>(C1 + J) = S10;
      *reinterpret_cast<Vec *>(C1 + J + L) = S11;
      *reinterpret_cast<Vec *>(C2 + J) = S20;
      *reinterpret_cast<Vec *>(C2 + J + L) = S21;
      *reinterpret_cast<Vec *>(C3 + J) = S30;
      *reinterpret_cast<Vec *>(C3 + J + L) = S31;
    }
    // Single-vector j tail, accumulators still held over K.
    for (; J + L <= j1; J += L) {
      Vec S0 = *reinterpret_cast<const Vec *>(C0 + J);
      Vec S1 = *reinterpret_cast<const Vec *>(C1 + J);
      Vec S2 = *reinterpret_cast<const Vec *>(C2 + J);
      Vec S3 = *reinterpret_cast<const Vec *>(C3 + J);
      for (unsigned K = k0; K < k1; ++K) {
        const Vec Bv = *reinterpret_cast<const Vec *>(
            B + static_cast<size_t>(K) * LdB + J);
        S0 += (A0[K] - Vec{}) * Bv;
        S1 += (A1[K] - Vec{}) * Bv;
        S2 += (A2[K] - Vec{}) * Bv;
        S3 += (A3[K] - Vec{}) * Bv;
      }
      *reinterpret_cast<Vec *>(C0 + J) = S0;
      *reinterpret_cast<Vec *>(C1 + J) = S1;
      *reinterpret_cast<Vec *>(C2 + J) = S2;
      *reinterpret_cast<Vec *>(C3 + J) = S3;
    }
    // Sub-vector j tail: run the scalar micro-kernel itself, not a
    // hand-written scalar loop. Bitwise identity with Scalar dispatch
    // must not hinge on the compiler contracting two different loops
    // into the same mul/fma mix, so the tail shares the scalar kernel's
    // machine code outright.
    if (J < j1)
      microNNScalar<T>(MR, J, j1, k0, k1, A, LdA, B, LdB, C, LdC, i0);
    return;
  }
  const unsigned jv = j0 + ((j1 - j0) / L) * L;
  for (unsigned I = i0; I < i0 + Rows; ++I) {
    T *__restrict Ci = C + static_cast<size_t>(I) * LdC;
    const T *__restrict Ai = A + static_cast<size_t>(I) * LdA;
    for (unsigned J = j0; J < jv; J += L) {
      Vec S = *reinterpret_cast<const Vec *>(Ci + J);
      for (unsigned K = k0; K < k1; ++K)
        S += (Ai[K] - Vec{}) *
             *reinterpret_cast<const Vec *>(B + static_cast<size_t>(K) * LdB +
                                            J);
      *reinterpret_cast<Vec *>(Ci + J) = S;
    }
  }
  if (jv < j1)
    microNNScalar<T>(Rows, jv, j1, k0, k1, A, LdA, B, LdB, C, LdC, i0);
}

#endif // MLIRRL_GEMM_HAVE_SIMD

/// Blocked serial driver for C(MxN) += A(MxK) . B(KxN); \p Simd selects
/// the micro-kernel (resolved once at the public entry point).
template <typename T>
void gemmNNSerial(unsigned M, unsigned N, unsigned K, const T *A, unsigned LdA,
                  const T *B, unsigned LdB, T *C, unsigned LdC, bool Simd) {
  (void)Simd;
  for (unsigned Jj = 0; Jj < N; Jj += NC) {
    unsigned Jend = std::min(N, Jj + NC);
    for (unsigned Kk = 0; Kk < K; Kk += KC) {
      unsigned Kend = std::min(K, Kk + KC);
      for (unsigned Ii = 0; Ii < M; Ii += MC) {
        unsigned Iend = std::min(M, Ii + MC);
        unsigned I = Ii;
#if MLIRRL_GEMM_HAVE_SIMD
        if (Simd) {
          for (; I + MR <= Iend; I += MR)
            microNNSimd<T>(MR, Jj, Jend, Kk, Kend, A, LdA, B, LdB, C, LdC, I);
          if (I < Iend)
            microNNSimd<T>(Iend - I, Jj, Jend, Kk, Kend, A, LdA, B, LdB, C,
                           LdC, I);
          continue;
        }
#endif
        for (; I + MR <= Iend; I += MR)
          microNNScalar<T>(MR, Jj, Jend, Kk, Kend, A, LdA, B, LdB, C, LdC, I);
        if (I < Iend)
          microNNScalar<T>(Iend - I, Jj, Jend, Kk, Kend, A, LdA, B, LdB, C,
                           LdC, I);
      }
    }
  }
}

/// C(MxN) += A(MxK) . B^T with B stored NxK: both operands are scanned
/// along k, so the inner loop is a unit-stride dot product; block j so
/// the scanned rows of B stay cache-resident across the i loop.
template <typename T>
void gemmNTSerial(unsigned M, unsigned N, unsigned K, const T *A, unsigned LdA,
                  const T *B, unsigned LdB, T *C, unsigned LdC) {
  for (unsigned Jj = 0; Jj < N; Jj += MC) {
    unsigned Jend = std::min(N, Jj + MC);
    for (unsigned Kk = 0; Kk < K; Kk += KC) {
      unsigned Kend = std::min(K, Kk + KC);
      for (unsigned I = 0; I < M; ++I) {
        const T *__restrict Ai = A + static_cast<size_t>(I) * LdA;
        T *__restrict Ci = C + static_cast<size_t>(I) * LdC;
        for (unsigned J = Jj; J < Jend; ++J) {
          const T *__restrict Bj = B + static_cast<size_t>(J) * LdB;
          T Acc = T(0);
          for (unsigned Kx = Kk; Kx < Kend; ++Kx)
            Acc += Ai[Kx] * Bj[Kx];
          Ci[J] += Acc;
        }
      }
    }
  }
}

/// C(MxN) += A^T . B with A stored KxM: a sequence of rank-1 updates.
/// Unroll k by MR so each C row load/store is amortized over MR
/// accumulated outer products; block i so the updated C panel stays
/// cache-resident across the k sweep.
template <typename T>
void gemmTNSerial(unsigned M, unsigned N, unsigned K, const T *A, unsigned LdA,
                  const T *B, unsigned LdB, T *C, unsigned LdC) {
  for (unsigned Ii = 0; Ii < M; Ii += MC) {
    unsigned Iend = std::min(M, Ii + MC);
    for (unsigned Jj = 0; Jj < N; Jj += NC) {
      unsigned Jend = std::min(N, Jj + NC);
      unsigned Kx = 0;
      for (; Kx + MR <= K; Kx += MR) {
        const T *__restrict A0 = A + static_cast<size_t>(Kx + 0) * LdA;
        const T *__restrict A1 = A + static_cast<size_t>(Kx + 1) * LdA;
        const T *__restrict A2 = A + static_cast<size_t>(Kx + 2) * LdA;
        const T *__restrict A3 = A + static_cast<size_t>(Kx + 3) * LdA;
        const T *__restrict B0 = B + static_cast<size_t>(Kx + 0) * LdB;
        const T *__restrict B1 = B + static_cast<size_t>(Kx + 1) * LdB;
        const T *__restrict B2 = B + static_cast<size_t>(Kx + 2) * LdB;
        const T *__restrict B3 = B + static_cast<size_t>(Kx + 3) * LdB;
        for (unsigned I = Ii; I < Iend; ++I) {
          const T V0 = A0[I], V1 = A1[I], V2 = A2[I], V3 = A3[I];
          // Rows fed only by zeros contribute nothing; skipping them is
          // exact and pays off in dW += X^T . dC with sparse feature
          // batches X, where entire feature columns are zero.
          if (V0 == T(0) && V1 == T(0) && V2 == T(0) && V3 == T(0))
            continue;
          T *__restrict Ci = C + static_cast<size_t>(I) * LdC;
          for (unsigned J = Jj; J < Jend; ++J)
            Ci[J] += V0 * B0[J] + V1 * B1[J] + V2 * B2[J] + V3 * B3[J];
        }
      }
      for (; Kx < K; ++Kx) {
        const T *__restrict Ak = A + static_cast<size_t>(Kx) * LdA;
        const T *__restrict Bk = B + static_cast<size_t>(Kx) * LdB;
        for (unsigned I = Ii; I < Iend; ++I) {
          const T V = Ak[I];
          // Zero rows contribute nothing; skipping them is exact and
          // pays off in the K == 1 case (dW += X^T . dC with a sparse
          // feature row X), where every zero skips a full C-row update.
          if (V == T(0))
            continue;
          T *__restrict Ci = C + static_cast<size_t>(I) * LdC;
          for (unsigned J = Jj; J < Jend; ++J)
            Ci[J] += V * Bk[J];
        }
      }
    }
  }
}

} // namespace detail
} // namespace nn
} // namespace mlirrl

#endif // MLIRRL_NN_GEMMKERNEL_H
