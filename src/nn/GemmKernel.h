//===- GemmKernel.h - Dtype-generic blocked GEMM kernels ---------*- C++-*-===//
///
/// \file
/// The dtype-generic kernel layer under nn/Gemm.h: cache-blocked,
/// register-tiled accumulate kernels templated on the element type,
/// instantiated for double (training; bitwise-stable) and float (the
/// vectorized inference path).
///
/// Two inner kernels exist for the NN (C += A.B) product:
///
///  - a portable scalar micro-kernel -- the reference semantics; the
///    double instantiation is the pre-dtype-refactor kernel verbatim,
///    which is what keeps the training path bitwise-identical across
///    the refactor; and
///  - an explicitly SIMD micro-kernel built on GNU vector extensions
///    (32-byte generic vectors, lowered by the compiler to whatever the
///    target has: AVX2, SSE2, NEON, or scalar code).
///
/// Both accumulate every C element over k in ascending order; the SIMD
/// kernel only widens the *j* axis, where lanes are independent
/// accumulator chains, so the two kernels are bitwise-identical on any
/// input for both dtypes (the gemm_smoke example and GemmTest assert
/// exact equality at runtime -- the guard against a miscompiled or
/// misdispatched SIMD path). Which one runs is a runtime dispatch
/// (nn::setGemmKernel); Auto resolves to SIMD where the extension
/// exists.
///
/// The NT (A.B^T) and TN (A^T.B) kernels are k-reduction respectively
/// rank-1-update shaped; they keep the scalar-ordered template only
/// (they carry the backward pass, which stays f64, and their inner
/// loops are already unit-stride for the autovectorizer).
///
/// On top of the streaming kernels sits the packed macro-kernel layer
/// (GotoBLAS/BLIS structure): gemm*PackedSerial copy each KC x NC panel
/// of B and MC x KC panel of A into dense 64-byte-aligned scratch once
/// per cache block -- transposing during the copy for NT's B and TN's A
/// so every k-reduction walks contiguous memory -- and then drive the
/// register kernels over the packed panels. Packing is a pure layout
/// transform: every C element still accumulates the exact ascending-k
/// sequence the unpacked kernel produces (NN reuses microNN* outright;
/// microNTPacked* keeps the per-KC-block temporary accumulator;
/// microTNPacked* keeps the MR-grouped sums and the exact zero-skip
/// tests), so packed and unpacked results are required to be
/// bitwise-identical -- GemmTest and gemm_smoke memcmp them. Whether
/// packing runs is a second runtime dispatch (nn::setGemmPacking).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_NN_GEMMKERNEL_H
#define MLIRRL_NN_GEMMKERNEL_H

#include <algorithm>
#include <cstddef>

#if defined(__GNUC__) || defined(__clang__)
#define MLIRRL_GEMM_HAVE_SIMD 1
#else
#define MLIRRL_GEMM_HAVE_SIMD 0
#endif

namespace mlirrl {
namespace nn {
namespace detail {

/// Cache-blocking parameters, in elements: a KC x NC panel of B stays
/// cache-resident while MC rows of A stream against it; the MR-row
/// register tile amortizes each B load over MR accumulator rows. The
/// element counts are shared by both dtypes (the float panels are half
/// the bytes, which only helps).
constexpr unsigned MC = 64;
constexpr unsigned KC = 256;
constexpr unsigned NC = 512;
constexpr unsigned MR = 4;

#if MLIRRL_GEMM_HAVE_SIMD
/// Generic SIMD vector of T: 32 bytes wide (4 doubles / 8 floats).
/// 32 beats 64 measurably on AVX-512 hardware here (GCC's 64-byte
/// lowering plus zmm frequency effects); on narrower ISAs the compiler
/// splits the vector, which costs nothing. The alignment override makes
/// loads/stores through casted pointers legal at element alignment (the
/// compiler emits unaligned moves); rows at arbitrary leading
/// dimensions are never vector-aligned.
template <typename T> struct SimdTraits {
  static constexpr unsigned Bytes = 32;
  static constexpr unsigned Lanes = Bytes / sizeof(T);
  typedef T Vec __attribute__((vector_size(Bytes), aligned(alignof(T))));
};
#endif

/// Portable scalar micro-kernel for C += A.B: C rows [i0, i0+Rows) x
/// [j0, j1) accumulate the K-panel [k0, k1). Rows <= MR; the j loop is
/// the (auto-)vectorized axis and each B row loaded from the panel
/// feeds Rows accumulator rows. This is the double kernel the repo
/// trained on before the dtype refactor, verbatim.
template <typename T>
inline void microNNScalar(unsigned Rows, unsigned j0, unsigned j1, unsigned k0,
                          unsigned k1, const T *__restrict A, unsigned LdA,
                          const T *__restrict B, unsigned LdB, T *__restrict C,
                          unsigned LdC, unsigned i0) {
  switch (Rows) {
  case 4:
    for (unsigned K = k0; K < k1; ++K) {
      const T A0 = A[(i0 + 0) * LdA + K];
      const T A1 = A[(i0 + 1) * LdA + K];
      const T A2 = A[(i0 + 2) * LdA + K];
      const T A3 = A[(i0 + 3) * LdA + K];
      const T *__restrict Bk = B + static_cast<size_t>(K) * LdB;
      T *__restrict C0 = C + static_cast<size_t>(i0 + 0) * LdC;
      T *__restrict C1 = C + static_cast<size_t>(i0 + 1) * LdC;
      T *__restrict C2 = C + static_cast<size_t>(i0 + 2) * LdC;
      T *__restrict C3 = C + static_cast<size_t>(i0 + 3) * LdC;
      for (unsigned J = j0; J < j1; ++J) {
        const T Bv = Bk[J];
        C0[J] += A0 * Bv;
        C1[J] += A1 * Bv;
        C2[J] += A2 * Bv;
        C3[J] += A3 * Bv;
      }
    }
    break;
  default:
    for (unsigned I = i0; I < i0 + Rows; ++I) {
      T *__restrict Ci = C + static_cast<size_t>(I) * LdC;
      for (unsigned K = k0; K < k1; ++K) {
        const T Av = A[I * LdA + K];
        const T *__restrict Bk = B + static_cast<size_t>(K) * LdB;
        for (unsigned J = j0; J < j1; ++J)
          Ci[J] += Av * Bk[J];
      }
    }
    break;
  }
}

#if MLIRRL_GEMM_HAVE_SIMD

/// Explicit-SIMD micro-kernel: identical accumulation semantics to
/// microNNScalar (each C element's k chain is untouched; only the j
/// axis is widened into independent lanes), so its output is required
/// to be bitwise-identical -- the j tail runs the same scalar
/// expression the scalar kernel runs.
template <typename T>
inline void microNNSimd(unsigned Rows, unsigned j0, unsigned j1, unsigned k0,
                        unsigned k1, const T *__restrict A, unsigned LdA,
                        const T *__restrict B, unsigned LdB, T *__restrict C,
                        unsigned LdC, unsigned i0) {
  using Vec = typename SimdTraits<T>::Vec;
  constexpr unsigned L = SimdTraits<T>::Lanes;
  if (Rows == MR) {
    T *__restrict C0 = C + static_cast<size_t>(i0 + 0) * LdC;
    T *__restrict C1 = C + static_cast<size_t>(i0 + 1) * LdC;
    T *__restrict C2 = C + static_cast<size_t>(i0 + 2) * LdC;
    T *__restrict C3 = C + static_cast<size_t>(i0 + 3) * LdC;
    const T *__restrict A0 = A + static_cast<size_t>(i0 + 0) * LdA;
    const T *__restrict A1 = A + static_cast<size_t>(i0 + 1) * LdA;
    const T *__restrict A2 = A + static_cast<size_t>(i0 + 2) * LdA;
    const T *__restrict A3 = A + static_cast<size_t>(i0 + 3) * LdA;
    unsigned J = j0;
    // Outer-product body: a 4-row x 2-vector C tile lives in registers
    // across the whole K panel (8 accumulators + 2 B loads + 4 A
    // broadcasts = within budget of a 16-register ISA), so C traffic
    // drops from per-k to per-panel. Holding an element's partial sum
    // in a register instead of storing/reloading it every k does not
    // reorder its k chain -- this stays bitwise-equal to the scalar
    // kernel.
    for (; J + 2 * L <= j1; J += 2 * L) {
      Vec S00 = *reinterpret_cast<const Vec *>(C0 + J);
      Vec S01 = *reinterpret_cast<const Vec *>(C0 + J + L);
      Vec S10 = *reinterpret_cast<const Vec *>(C1 + J);
      Vec S11 = *reinterpret_cast<const Vec *>(C1 + J + L);
      Vec S20 = *reinterpret_cast<const Vec *>(C2 + J);
      Vec S21 = *reinterpret_cast<const Vec *>(C2 + J + L);
      Vec S30 = *reinterpret_cast<const Vec *>(C3 + J);
      Vec S31 = *reinterpret_cast<const Vec *>(C3 + J + L);
      for (unsigned K = k0; K < k1; ++K) {
        const T *__restrict Bk = B + static_cast<size_t>(K) * LdB;
        const Vec B0 = *reinterpret_cast<const Vec *>(Bk + J);
        const Vec B1 = *reinterpret_cast<const Vec *>(Bk + J + L);
        const Vec VA0 = A0[K] - Vec{}; // broadcast
        const Vec VA1 = A1[K] - Vec{};
        const Vec VA2 = A2[K] - Vec{};
        const Vec VA3 = A3[K] - Vec{};
        S00 += VA0 * B0;
        S01 += VA0 * B1;
        S10 += VA1 * B0;
        S11 += VA1 * B1;
        S20 += VA2 * B0;
        S21 += VA2 * B1;
        S30 += VA3 * B0;
        S31 += VA3 * B1;
      }
      *reinterpret_cast<Vec *>(C0 + J) = S00;
      *reinterpret_cast<Vec *>(C0 + J + L) = S01;
      *reinterpret_cast<Vec *>(C1 + J) = S10;
      *reinterpret_cast<Vec *>(C1 + J + L) = S11;
      *reinterpret_cast<Vec *>(C2 + J) = S20;
      *reinterpret_cast<Vec *>(C2 + J + L) = S21;
      *reinterpret_cast<Vec *>(C3 + J) = S30;
      *reinterpret_cast<Vec *>(C3 + J + L) = S31;
    }
    // Single-vector j tail, accumulators still held over K.
    for (; J + L <= j1; J += L) {
      Vec S0 = *reinterpret_cast<const Vec *>(C0 + J);
      Vec S1 = *reinterpret_cast<const Vec *>(C1 + J);
      Vec S2 = *reinterpret_cast<const Vec *>(C2 + J);
      Vec S3 = *reinterpret_cast<const Vec *>(C3 + J);
      for (unsigned K = k0; K < k1; ++K) {
        const Vec Bv = *reinterpret_cast<const Vec *>(
            B + static_cast<size_t>(K) * LdB + J);
        S0 += (A0[K] - Vec{}) * Bv;
        S1 += (A1[K] - Vec{}) * Bv;
        S2 += (A2[K] - Vec{}) * Bv;
        S3 += (A3[K] - Vec{}) * Bv;
      }
      *reinterpret_cast<Vec *>(C0 + J) = S0;
      *reinterpret_cast<Vec *>(C1 + J) = S1;
      *reinterpret_cast<Vec *>(C2 + J) = S2;
      *reinterpret_cast<Vec *>(C3 + J) = S3;
    }
    // Sub-vector j tail: run the scalar micro-kernel itself, not a
    // hand-written scalar loop. Bitwise identity with Scalar dispatch
    // must not hinge on the compiler contracting two different loops
    // into the same mul/fma mix, so the tail shares the scalar kernel's
    // machine code outright.
    if (J < j1)
      microNNScalar<T>(MR, J, j1, k0, k1, A, LdA, B, LdB, C, LdC, i0);
    return;
  }
  const unsigned jv = j0 + ((j1 - j0) / L) * L;
  for (unsigned I = i0; I < i0 + Rows; ++I) {
    T *__restrict Ci = C + static_cast<size_t>(I) * LdC;
    const T *__restrict Ai = A + static_cast<size_t>(I) * LdA;
    for (unsigned J = j0; J < jv; J += L) {
      Vec S = *reinterpret_cast<const Vec *>(Ci + J);
      for (unsigned K = k0; K < k1; ++K)
        S += (Ai[K] - Vec{}) *
             *reinterpret_cast<const Vec *>(B + static_cast<size_t>(K) * LdB +
                                            J);
      *reinterpret_cast<Vec *>(Ci + J) = S;
    }
  }
  if (jv < j1)
    microNNScalar<T>(Rows, jv, j1, k0, k1, A, LdA, B, LdB, C, LdC, i0);
}

#endif // MLIRRL_GEMM_HAVE_SIMD

/// Blocked serial driver for C(MxN) += A(MxK) . B(KxN); \p Simd selects
/// the micro-kernel (resolved once at the public entry point).
template <typename T>
void gemmNNSerial(unsigned M, unsigned N, unsigned K, const T *A, unsigned LdA,
                  const T *B, unsigned LdB, T *C, unsigned LdC, bool Simd) {
  (void)Simd;
  for (unsigned Jj = 0; Jj < N; Jj += NC) {
    unsigned Jend = std::min(N, Jj + NC);
    for (unsigned Kk = 0; Kk < K; Kk += KC) {
      unsigned Kend = std::min(K, Kk + KC);
      for (unsigned Ii = 0; Ii < M; Ii += MC) {
        unsigned Iend = std::min(M, Ii + MC);
        unsigned I = Ii;
#if MLIRRL_GEMM_HAVE_SIMD
        if (Simd) {
          for (; I + MR <= Iend; I += MR)
            microNNSimd<T>(MR, Jj, Jend, Kk, Kend, A, LdA, B, LdB, C, LdC, I);
          if (I < Iend)
            microNNSimd<T>(Iend - I, Jj, Jend, Kk, Kend, A, LdA, B, LdB, C,
                           LdC, I);
          continue;
        }
#endif
        for (; I + MR <= Iend; I += MR)
          microNNScalar<T>(MR, Jj, Jend, Kk, Kend, A, LdA, B, LdB, C, LdC, I);
        if (I < Iend)
          microNNScalar<T>(Iend - I, Jj, Jend, Kk, Kend, A, LdA, B, LdB, C,
                           LdC, I);
      }
    }
  }
}

/// The NT per-element k-chain: a zero-started, ascending-k multiply-add
/// chain over N elements, A unit-stride, B at stride BStride (1 for the
/// streaming kernel's row pairs; the panel width for a transposed-packed
/// column). noinline + no-tree-vectorize pin ONE scalar emission of the
/// chain -- a straight (contracted, on FMA targets) multiply-add
/// sequence -- that every scalar-path NT element shares. Without the
/// pin, GCC autovectorizes this reduction in-order with a
/// target-dependent mix of separately-rounded multiplies and fma
/// remainders, which no lane-parallel kernel can reproduce bitwise;
/// with it, the SIMD kernel's per-lane chain (one vector fma per k) is
/// the exact same arithmetic. Same doctrine as microNNSimd's scalar
/// tail: bitwise parity must be a property of the binary, not of two
/// loops happening to contract alike.
template <typename T>
__attribute__((noinline, optimize("no-tree-vectorize"))) T
microNTDot(const T *__restrict A, const T *__restrict B, unsigned BStride,
           unsigned N) {
  T Acc = T(0);
  for (unsigned Kx = 0; Kx < N; ++Kx)
    Acc += A[Kx] * B[static_cast<size_t>(Kx) * BStride];
  return Acc;
}

/// C(MxN) += A(MxK) . B^T with B stored NxK: both operands are scanned
/// along k, so the inner loop is a unit-stride dot product (the shared
/// pinned chain above); block j so the scanned rows of B stay
/// cache-resident across the i loop.
template <typename T>
void gemmNTSerial(unsigned M, unsigned N, unsigned K, const T *A, unsigned LdA,
                  const T *B, unsigned LdB, T *C, unsigned LdC) {
  for (unsigned Jj = 0; Jj < N; Jj += MC) {
    unsigned Jend = std::min(N, Jj + MC);
    for (unsigned Kk = 0; Kk < K; Kk += KC) {
      unsigned Kend = std::min(K, Kk + KC);
      for (unsigned I = 0; I < M; ++I) {
        const T *__restrict Ai = A + static_cast<size_t>(I) * LdA;
        T *__restrict Ci = C + static_cast<size_t>(I) * LdC;
        for (unsigned J = Jj; J < Jend; ++J) {
          const T *__restrict Bj = B + static_cast<size_t>(J) * LdB;
          Ci[J] += microNTDot(Ai + Kk, Bj + Kk, 1u, Kend - Kk);
        }
      }
    }
  }
}

/// C(MxN) += A^T . B with A stored KxM: a sequence of rank-1 updates.
/// Unroll k by MR so each C row load/store is amortized over MR
/// accumulated outer products; block i so the updated C panel stays
/// cache-resident across the k sweep.
template <typename T>
void gemmTNSerial(unsigned M, unsigned N, unsigned K, const T *A, unsigned LdA,
                  const T *B, unsigned LdB, T *C, unsigned LdC) {
  for (unsigned Ii = 0; Ii < M; Ii += MC) {
    unsigned Iend = std::min(M, Ii + MC);
    for (unsigned Jj = 0; Jj < N; Jj += NC) {
      unsigned Jend = std::min(N, Jj + NC);
      unsigned Kx = 0;
      for (; Kx + MR <= K; Kx += MR) {
        const T *__restrict A0 = A + static_cast<size_t>(Kx + 0) * LdA;
        const T *__restrict A1 = A + static_cast<size_t>(Kx + 1) * LdA;
        const T *__restrict A2 = A + static_cast<size_t>(Kx + 2) * LdA;
        const T *__restrict A3 = A + static_cast<size_t>(Kx + 3) * LdA;
        const T *__restrict B0 = B + static_cast<size_t>(Kx + 0) * LdB;
        const T *__restrict B1 = B + static_cast<size_t>(Kx + 1) * LdB;
        const T *__restrict B2 = B + static_cast<size_t>(Kx + 2) * LdB;
        const T *__restrict B3 = B + static_cast<size_t>(Kx + 3) * LdB;
        for (unsigned I = Ii; I < Iend; ++I) {
          const T V0 = A0[I], V1 = A1[I], V2 = A2[I], V3 = A3[I];
          // Rows fed only by zeros contribute nothing; skipping them is
          // exact and pays off in dW += X^T . dC with sparse feature
          // batches X, where entire feature columns are zero.
          if (V0 == T(0) && V1 == T(0) && V2 == T(0) && V3 == T(0))
            continue;
          T *__restrict Ci = C + static_cast<size_t>(I) * LdC;
          for (unsigned J = Jj; J < Jend; ++J)
            Ci[J] += V0 * B0[J] + V1 * B1[J] + V2 * B2[J] + V3 * B3[J];
        }
      }
      for (; Kx < K; ++Kx) {
        const T *__restrict Ak = A + static_cast<size_t>(Kx) * LdA;
        const T *__restrict Bk = B + static_cast<size_t>(Kx) * LdB;
        for (unsigned I = Ii; I < Iend; ++I) {
          const T V = Ak[I];
          // Zero rows contribute nothing; skipping them is exact and
          // pays off in the K == 1 case (dW += X^T . dC with a sparse
          // feature row X), where every zero skips a full C-row update.
          if (V == T(0))
            continue;
          T *__restrict Ci = C + static_cast<size_t>(I) * LdC;
          for (unsigned J = Jj; J < Jend; ++J)
            Ci[J] += V * Bk[J];
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Packed macro-kernel layer
//===----------------------------------------------------------------------===//

// The TN macro-kernel tiles k by KC while reproducing gemmTNSerial's
// *absolute* MR-groups over the full K; that only lines up because
// every KC block boundary is itself a group boundary.
static_assert(KC % MR == 0, "KC blocks must align with MR k-groups");

/// Packed panels pad their row stride by one cache line. Matrix sizes
/// tend to be powers of two, which makes the natural panel stride a
/// multiple of 4 KB right when the panels are widest -- every row (or
/// every k step of a transposed panel) then maps to the same L1 set and
/// the k-sweeps thrash. One line of skew spreads consecutive rows
/// across sets. Padding is invisible to results: the same elements are
/// read in the same order through the leading-dimension parameter.
constexpr unsigned packPad(size_t ElemSize) {
  return static_cast<unsigned>(64 / ElemSize);
}

/// Elements of pack scratch a packed call needs at most: one padded
/// KC x NC B panel plus one padded MC x KC A panel, with the pad sized
/// for the smallest element type (an upper bound for both dtypes).
constexpr size_t PackScratchElems =
    static_cast<size_t>(KC) * (NC + packPad(sizeof(float))) +
    static_cast<size_t>(MC) * (KC + packPad(sizeof(float)));

/// Offset of the A panel inside the scratch block (B panel first).
constexpr size_t PackScratchAOffset =
    static_cast<size_t>(KC) * (NC + packPad(sizeof(float)));

/// Straight row-major copy of the [r0,r1) x [c0,c1) block of Src
/// (leading dimension LdSrc) into the dense panel Dst with leading
/// dimension LdDst >= c1-c0. Element order is preserved; this is pure
/// layout.
template <typename T>
inline void packBlock(const T *__restrict Src, unsigned LdSrc, unsigned r0,
                      unsigned r1, unsigned c0, unsigned c1, T *__restrict Dst,
                      unsigned LdDst) {
  const unsigned W = c1 - c0;
  for (unsigned R = r0; R < r1; ++R) {
    const T *__restrict S = Src + static_cast<size_t>(R) * LdSrc + c0;
    T *__restrict D = Dst + static_cast<size_t>(R - r0) * LdDst;
    for (unsigned Col = 0; Col < W; ++Col)
      D[Col] = S[Col];
  }
}

/// Transpose-pack: the [y0,y1) x [x0,x1) block of Src lands in Dst
/// transposed, Dst[(x-x0)*LdDst + (y-y0)] = Src[y*LdSrc + x]. Reads
/// stream Src rows contiguously; writes stride, but the panel is small
/// and written once per cache block.
template <typename T>
inline void packTranspose(const T *__restrict Src, unsigned LdSrc, unsigned y0,
                          unsigned y1, unsigned x0, unsigned x1,
                          T *__restrict Dst, unsigned LdDst) {
  for (unsigned Y = y0; Y < y1; ++Y) {
    const T *__restrict S = Src + static_cast<size_t>(Y) * LdSrc;
    for (unsigned X = x0; X < x1; ++X)
      Dst[static_cast<size_t>(X - x0) * LdDst + (Y - y0)] = S[X];
  }
}

/// Packed NN driver: identical loop structure to gemmNNSerial, but each
/// (Jj, Kk) B panel and (Ii, Kk) A panel is copied into dense scratch
/// first and the *same* micro-kernels run over the packed panels with
/// block-local coordinates. Same function, same trip counts, same
/// values -- bitwise-equal to the unpacked driver by construction; what
/// changes is that every B panel load is now contiguous and the A rows
/// dense, instead of striding the caller's leading dimensions.
template <typename T>
void gemmNNPackedSerial(unsigned M, unsigned N, unsigned K, const T *A,
                        unsigned LdA, const T *B, unsigned LdB, T *C,
                        unsigned LdC, bool Simd, T *__restrict Ap,
                        T *__restrict Bp) {
  (void)Simd;
  constexpr unsigned Pad = packPad(sizeof(T));
  for (unsigned Jj = 0; Jj < N; Jj += NC) {
    const unsigned Jend = std::min(N, Jj + NC), NB = Jend - Jj;
    const unsigned LdBp = NB + Pad;
    for (unsigned Kk = 0; Kk < K; Kk += KC) {
      const unsigned Kend = std::min(K, Kk + KC), KB = Kend - Kk;
      const unsigned LdAp = KB + Pad;
      packBlock(B, LdB, Kk, Kend, Jj, Jend, Bp, LdBp);
      for (unsigned Ii = 0; Ii < M; Ii += MC) {
        const unsigned Iend = std::min(M, Ii + MC), MB = Iend - Ii;
        packBlock(A, LdA, Ii, Iend, Kk, Kend, Ap, LdAp);
        T *Cb = C + static_cast<size_t>(Ii) * LdC + Jj;
        unsigned I = 0;
#if MLIRRL_GEMM_HAVE_SIMD
        if (Simd) {
          for (; I + MR <= MB; I += MR)
            microNNSimd<T>(MR, 0, NB, 0, KB, Ap, LdAp, Bp, LdBp, Cb, LdC, I);
          if (I < MB)
            microNNSimd<T>(MB - I, 0, NB, 0, KB, Ap, LdAp, Bp, LdBp, Cb, LdC,
                           I);
          continue;
        }
#endif
        for (; I + MR <= MB; I += MR)
          microNNScalar<T>(MR, 0, NB, 0, KB, Ap, LdAp, Bp, LdBp, Cb, LdC, I);
        if (I < MB)
          microNNScalar<T>(MB - I, 0, NB, 0, KB, Ap, LdAp, Bp, LdBp, Cb, LdC,
                           I);
      }
    }
  }
}

/// Packed NT micro-kernel, scalar form: C[i][j] += (sum over the packed
/// k panel of Ap[i][k] * Bp[k][j]), one microNTDot chain per element --
/// literally the same emitted function gemmNTSerial runs, called with
/// the transposed panel's column stride, so the packed path is
/// bitwise-identical by shared machine code. This form exists as the
/// Scalar-dispatch reference and the sub-vector j tail; the SIMD form
/// below is the fast path.
template <typename T>
inline void microNTPackedScalar(unsigned Rows, unsigned NB, unsigned KB,
                                const T *__restrict Ap, unsigned LdAp,
                                const T *__restrict Bp, unsigned LdBp,
                                T *__restrict C, unsigned LdC) {
  for (unsigned I = 0; I < Rows; ++I) {
    const T *__restrict Ai = Ap + static_cast<size_t>(I) * LdAp;
    T *__restrict Ci = C + static_cast<size_t>(I) * LdC;
    for (unsigned J = 0; J < NB; ++J)
      Ci[J] += microNTDot(Ai, Bp + J, LdBp, KB);
  }
}

#if MLIRRL_GEMM_HAVE_SIMD

/// Packed NT micro-kernel, SIMD form. The unpacked NT kernel is
/// latency-bound: one scalar Acc chain per (i, j) means every fma waits
/// on the previous one. Here the j axis is widened into vector lanes
/// and an MR-row x 2-vector block of partial sums lives in registers,
/// so 8 independent accumulator chains cover the fma latency -- but
/// each *lane* still computes the exact chain the scalar kernel does:
/// zero-started, ascending k over the packed panel, one C += at the
/// end. The transpose-pack is what makes the per-k B loads contiguous
/// j-vectors instead of LdB-strided gathers.
template <typename T>
inline void microNTPackedSimd(unsigned Rows, unsigned NB, unsigned KB,
                              const T *__restrict Ap, unsigned LdAp,
                              const T *__restrict Bp, unsigned LdBp,
                              T *__restrict C, unsigned LdC) {
  using Vec = typename SimdTraits<T>::Vec;
  constexpr unsigned L = SimdTraits<T>::Lanes;
  if (Rows == MR) {
    const T *__restrict A0 = Ap;
    const T *__restrict A1 = Ap + static_cast<size_t>(LdAp);
    const T *__restrict A2 = Ap + 2 * static_cast<size_t>(LdAp);
    const T *__restrict A3 = Ap + 3 * static_cast<size_t>(LdAp);
    T *__restrict C0 = C;
    T *__restrict C1 = C + static_cast<size_t>(LdC);
    T *__restrict C2 = C + 2 * static_cast<size_t>(LdC);
    T *__restrict C3 = C + 3 * static_cast<size_t>(LdC);
    unsigned J = 0;
    for (; J + 2 * L <= NB; J += 2 * L) {
      Vec S00 = Vec{}, S01 = Vec{}, S10 = Vec{}, S11 = Vec{};
      Vec S20 = Vec{}, S21 = Vec{}, S30 = Vec{}, S31 = Vec{};
      for (unsigned Kx = 0; Kx < KB; ++Kx) {
        const T *__restrict Bk = Bp + static_cast<size_t>(Kx) * LdBp;
        const Vec B0 = *reinterpret_cast<const Vec *>(Bk + J);
        const Vec B1 = *reinterpret_cast<const Vec *>(Bk + J + L);
        const Vec VA0 = A0[Kx] - Vec{}; // broadcast
        const Vec VA1 = A1[Kx] - Vec{};
        const Vec VA2 = A2[Kx] - Vec{};
        const Vec VA3 = A3[Kx] - Vec{};
        S00 += VA0 * B0;
        S01 += VA0 * B1;
        S10 += VA1 * B0;
        S11 += VA1 * B1;
        S20 += VA2 * B0;
        S21 += VA2 * B1;
        S30 += VA3 * B0;
        S31 += VA3 * B1;
      }
      *reinterpret_cast<Vec *>(C0 + J) =
          *reinterpret_cast<const Vec *>(C0 + J) + S00;
      *reinterpret_cast<Vec *>(C0 + J + L) =
          *reinterpret_cast<const Vec *>(C0 + J + L) + S01;
      *reinterpret_cast<Vec *>(C1 + J) =
          *reinterpret_cast<const Vec *>(C1 + J) + S10;
      *reinterpret_cast<Vec *>(C1 + J + L) =
          *reinterpret_cast<const Vec *>(C1 + J + L) + S11;
      *reinterpret_cast<Vec *>(C2 + J) =
          *reinterpret_cast<const Vec *>(C2 + J) + S20;
      *reinterpret_cast<Vec *>(C2 + J + L) =
          *reinterpret_cast<const Vec *>(C2 + J + L) + S21;
      *reinterpret_cast<Vec *>(C3 + J) =
          *reinterpret_cast<const Vec *>(C3 + J) + S30;
      *reinterpret_cast<Vec *>(C3 + J + L) =
          *reinterpret_cast<const Vec *>(C3 + J + L) + S31;
    }
    for (; J + L <= NB; J += L) {
      Vec S0 = Vec{}, S1 = Vec{}, S2 = Vec{}, S3 = Vec{};
      for (unsigned Kx = 0; Kx < KB; ++Kx) {
        const Vec Bv =
            *reinterpret_cast<const Vec *>(Bp + static_cast<size_t>(Kx) * LdBp +
                                           J);
        S0 += (A0[Kx] - Vec{}) * Bv;
        S1 += (A1[Kx] - Vec{}) * Bv;
        S2 += (A2[Kx] - Vec{}) * Bv;
        S3 += (A3[Kx] - Vec{}) * Bv;
      }
      *reinterpret_cast<Vec *>(C0 + J) =
          *reinterpret_cast<const Vec *>(C0 + J) + S0;
      *reinterpret_cast<Vec *>(C1 + J) =
          *reinterpret_cast<const Vec *>(C1 + J) + S1;
      *reinterpret_cast<Vec *>(C2 + J) =
          *reinterpret_cast<const Vec *>(C2 + J) + S2;
      *reinterpret_cast<Vec *>(C3 + J) =
          *reinterpret_cast<const Vec *>(C3 + J) + S3;
    }
    // Sub-vector j tail: delegate to the scalar packed kernel so tail
    // elements share its machine code (same no-two-loops-contract-
    // differently reasoning as microNNSimd's tail).
    if (J < NB)
      microNTPackedScalar<T>(MR, NB - J, KB, Ap, LdAp, Bp + J, LdBp, C + J,
                             LdC);
    return;
  }
  for (unsigned I = 0; I < Rows; ++I) {
    const T *__restrict Ai = Ap + static_cast<size_t>(I) * LdAp;
    T *__restrict Ci = C + static_cast<size_t>(I) * LdC;
    unsigned J = 0;
    for (; J + L <= NB; J += L) {
      Vec S = Vec{};
      for (unsigned Kx = 0; Kx < KB; ++Kx)
        S += (Ai[Kx] - Vec{}) *
             *reinterpret_cast<const Vec *>(Bp +
                                            static_cast<size_t>(Kx) * LdBp + J);
      *reinterpret_cast<Vec *>(Ci + J) =
          *reinterpret_cast<const Vec *>(Ci + J) + S;
    }
    if (J < NB)
      microNTPackedScalar<T>(1, NB - J, KB, Ai, LdAp, Bp + J, LdBp, Ci + J,
                             LdC);
  }
}

#endif // MLIRRL_GEMM_HAVE_SIMD

/// Packed NT driver: C(MxN) += A(MxK) . B^T with B stored NxK. B is
/// transpose-packed per (Jj, Kk) block -- Bp[k][j] = B[j][k] -- so the
/// k-reduction that made the unpacked kernel crawl (LdB-strided loads,
/// one latency-bound Acc chain) becomes contiguous vector loads; A is
/// straight-packed dense. Per C element the accumulation is unchanged:
/// ascending KC blocks, a zero-started partial sum per block, C += per
/// block.
template <typename T>
void gemmNTPackedSerial(unsigned M, unsigned N, unsigned K, const T *A,
                        unsigned LdA, const T *B, unsigned LdB, T *C,
                        unsigned LdC, bool Simd, T *__restrict Ap,
                        T *__restrict Bp) {
  (void)Simd;
  constexpr unsigned Pad = packPad(sizeof(T));
  for (unsigned Jj = 0; Jj < N; Jj += NC) {
    const unsigned Jend = std::min(N, Jj + NC), NB = Jend - Jj;
    const unsigned LdBp = NB + Pad;
    for (unsigned Kk = 0; Kk < K; Kk += KC) {
      const unsigned Kend = std::min(K, Kk + KC), KB = Kend - Kk;
      const unsigned LdAp = KB + Pad;
      packTranspose(B, LdB, Jj, Jend, Kk, Kend, Bp, LdBp);
      for (unsigned Ii = 0; Ii < M; Ii += MC) {
        const unsigned Iend = std::min(M, Ii + MC), MB = Iend - Ii;
        packBlock(A, LdA, Ii, Iend, Kk, Kend, Ap, LdAp);
        T *Cb = C + static_cast<size_t>(Ii) * LdC + Jj;
        unsigned I = 0;
#if MLIRRL_GEMM_HAVE_SIMD
        if (Simd) {
          for (; I + MR <= MB; I += MR)
            microNTPackedSimd<T>(MR, NB, KB, Ap + static_cast<size_t>(I) * LdAp,
                                 LdAp, Bp, LdBp,
                                 Cb + static_cast<size_t>(I) * LdC, LdC);
          if (I < MB)
            microNTPackedSimd<T>(MB - I, NB, KB,
                                 Ap + static_cast<size_t>(I) * LdAp, LdAp, Bp,
                                 LdBp, Cb + static_cast<size_t>(I) * LdC, LdC);
          continue;
        }
#endif
        for (; I + MR <= MB; I += MR)
          microNTPackedScalar<T>(MR, NB, KB, Ap + static_cast<size_t>(I) * LdAp,
                                 LdAp, Bp, LdBp,
                                 Cb + static_cast<size_t>(I) * LdC, LdC);
        if (I < MB)
          microNTPackedScalar<T>(MB - I, NB, KB,
                                 Ap + static_cast<size_t>(I) * LdAp, LdAp, Bp,
                                 LdBp, Cb + static_cast<size_t>(I) * LdC, LdC);
      }
    }
  }
}

/// Packed TN micro-kernel: reproduces gemmTNSerial's accumulation
/// exactly -- ascending k in groups of MR, each group's four products
/// summed as ((V0*B0 + V1*B1) + V2*B2) + V3*B3 and added to C once,
/// all-zero groups skipped (the skip is load-bearing for sparse
/// dW += X^T . dC batches *and* for bitwise identity: dropping it could
/// flip a -0.0 in C). Loop order is gemmTNSerial's too -- k-groups
/// outer, rows inner -- so the group's four B rows stay L1-hot across
/// the whole row sweep; what packing changes is that each row's four A
/// values come from one contiguous quad of the transpose-packed panel
/// instead of four LdA-strided streams. One emission serves both
/// dispatches: the j loop is an independent-lane elementwise update
/// (not a reduction), so the compiler's vectorization of it cannot
/// reorder any element's k chain, and Scalar/Simd dispatch sharing this
/// function makes their bitwise identity a property of the binary.
template <typename T>
inline void microTNPacked(unsigned Rows, unsigned NB, unsigned KB,
                          const T *__restrict Ap, unsigned LdAp,
                          const T *__restrict B, unsigned LdB, T *__restrict C,
                          unsigned LdC) {
  unsigned Kx = 0;
  for (; Kx + MR <= KB; Kx += MR) {
    const T *__restrict B0 = B + static_cast<size_t>(Kx + 0) * LdB;
    const T *__restrict B1 = B + static_cast<size_t>(Kx + 1) * LdB;
    const T *__restrict B2 = B + static_cast<size_t>(Kx + 2) * LdB;
    const T *__restrict B3 = B + static_cast<size_t>(Kx + 3) * LdB;
    for (unsigned I = 0; I < Rows; ++I) {
      const T *__restrict Ai = Ap + static_cast<size_t>(I) * LdAp;
      const T V0 = Ai[Kx + 0], V1 = Ai[Kx + 1], V2 = Ai[Kx + 2],
              V3 = Ai[Kx + 3];
      if (V0 == T(0) && V1 == T(0) && V2 == T(0) && V3 == T(0))
        continue;
      T *__restrict Ci = C + static_cast<size_t>(I) * LdC;
      for (unsigned J = 0; J < NB; ++J)
        Ci[J] += V0 * B0[J] + V1 * B1[J] + V2 * B2[J] + V3 * B3[J];
    }
  }
  for (; Kx < KB; ++Kx) {
    const T *__restrict Bk = B + static_cast<size_t>(Kx) * LdB;
    for (unsigned I = 0; I < Rows; ++I) {
      const T V = Ap[static_cast<size_t>(I) * LdAp + Kx];
      if (V == T(0))
        continue;
      T *__restrict Ci = C + static_cast<size_t>(I) * LdC;
      for (unsigned J = 0; J < NB; ++J)
        Ci[J] += V * Bk[J];
    }
  }
}

/// Packed TN driver: C(MxN) += A^T . B with A stored KxM. A is
/// transpose-packed per (Ii, Kk) block -- Ap[i][k] = A[k][i] -- so each
/// C row's k sweep loads its MR A values from one contiguous run; B is
/// straight-packed with the padded stride (its rows are already
/// j-contiguous, but power-of-two leading dimensions alias every k step
/// of the column sweep into one L1 set without the skew). k is tiled by
/// KC (KC % MR == 0 keeps block-local groups identical to
/// gemmTNSerial's absolute groups for any K; only the final block
/// carries the sub-MR remainder), so per C element the update sequence
/// -- group sums in ascending k, zero groups skipped -- is unchanged.
template <typename T>
void gemmTNPackedSerial(unsigned M, unsigned N, unsigned K, const T *A,
                        unsigned LdA, const T *B, unsigned LdB, T *C,
                        unsigned LdC, bool Simd, T *__restrict Ap,
                        T *__restrict Bp) {
  (void)Simd;
  constexpr unsigned Pad = packPad(sizeof(T));
  for (unsigned Jj = 0; Jj < N; Jj += NC) {
    const unsigned Jend = std::min(N, Jj + NC), NB = Jend - Jj;
    const unsigned LdBp = NB + Pad;
    for (unsigned Kk = 0; Kk < K; Kk += KC) {
      const unsigned Kend = std::min(K, Kk + KC), KB = Kend - Kk;
      const unsigned LdAp = KB + Pad;
      packBlock(B, LdB, Kk, Kend, Jj, Jend, Bp, LdBp);
      for (unsigned Ii = 0; Ii < M; Ii += MC) {
        const unsigned Iend = std::min(M, Ii + MC), MB = Iend - Ii;
        packTranspose(A, LdA, Kk, Kend, Ii, Iend, Ap, LdAp);
        T *Cb = C + static_cast<size_t>(Ii) * LdC + Jj;
        // One micro-kernel for both dispatches (see microTNPacked): the
        // TN inner loop is already the autovectorizer's best case, and
        // a single emission keeps Scalar/Simd bitwise-equal for free.
        microTNPacked<T>(MB, NB, KB, Ap, LdAp, Bp, LdBp, Cb, LdC);
      }
    }
  }
}

} // namespace detail
} // namespace nn
} // namespace mlirrl

#endif // MLIRRL_NN_GEMMKERNEL_H
