//===- Layers.h - Trainable layers -------------------------------*- C++-*-===//
///
/// \file
/// Trainable layers of the actor-critic networks: Linear (dense) layers
/// and the MLP backbone of Fig. 4a (three Dense(512) + ReLU stages).
/// Parameters are autograd tensors; parameters() exposes them to the
/// optimizer.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_NN_LAYERS_H
#define MLIRRL_NN_LAYERS_H

#include "nn/Ops.h"
#include "nn/Tensor.h"
#include "support/Rng.h"

#include <vector>

namespace mlirrl {
namespace nn {

/// y = x W + b with Xavier-uniform initialization.
class Linear {
public:
  Linear() = default;
  Linear(unsigned In, unsigned Out, Rng &Rng);

  Tensor forward(const Tensor &X) const;

  /// y = [X, H] W + b without materializing the concatenation (see
  /// nn::linearSplit); the LSTM gates run on this.
  Tensor forwardSplit(const Tensor &X, const Tensor &H) const {
    return linearSplit(X, H, W, B);
  }

  std::vector<Tensor> parameters() const { return {W, B}; }

  const Tensor &weight() const { return W; }
  const Tensor &bias() const { return B; }

  unsigned inFeatures() const { return W.rows(); }
  unsigned outFeatures() const { return W.cols(); }

private:
  Tensor W; // In x Out
  Tensor B; // 1 x Out
};

/// The backbone of the policy and value networks (Fig. 4a): a stack of
/// Linear + ReLU layers.
class Mlp {
public:
  Mlp() = default;
  /// Builds Depth layers of Hidden units over an In-dimensional input.
  Mlp(unsigned In, unsigned Hidden, unsigned Depth, Rng &Rng);

  Tensor forward(const Tensor &X) const;
  std::vector<Tensor> parameters() const;

  unsigned outFeatures() const;

  /// The layer stack (read-only; the f32 inference packer walks it).
  const std::vector<Linear> &layers() const { return Layers; }

private:
  std::vector<Linear> Layers;
};

} // namespace nn
} // namespace mlirrl

#endif // MLIRRL_NN_LAYERS_H
