//===- Layers.cpp ---------------------------------------------------------===//

#include "nn/Layers.h"

#include <cassert>
#include <cmath>

using namespace mlirrl;
using namespace mlirrl::nn;

Linear::Linear(unsigned In, unsigned Out, Rng &Rng) {
  double Bound = std::sqrt(6.0 / (In + Out));
  std::vector<double> Weights(static_cast<size_t>(In) * Out);
  for (double &W : Weights)
    W = Rng.nextDouble(-Bound, Bound);
  W = Tensor::parameter(In, Out, std::move(Weights));
  B = Tensor::parameter(1, Out, std::vector<double>(Out, 0.0));
}

Tensor Linear::forward(const Tensor &X) const {
  assert(X.cols() == W.rows() && "input feature arity mismatch");
  return linear(X, W, B);
}

Mlp::Mlp(unsigned In, unsigned Hidden, unsigned Depth, Rng &Rng) {
  assert(Depth > 0 && "MLP needs at least one layer");
  unsigned Prev = In;
  for (unsigned I = 0; I < Depth; ++I) {
    Layers.emplace_back(Prev, Hidden, Rng);
    Prev = Hidden;
  }
}

Tensor Mlp::forward(const Tensor &X) const {
  Tensor H = X;
  for (const Linear &L : Layers)
    H = relu(L.forward(H));
  return H;
}

std::vector<Tensor> Mlp::parameters() const {
  std::vector<Tensor> Params;
  for (const Linear &L : Layers)
    for (const Tensor &P : L.parameters())
      Params.push_back(P);
  return Params;
}

unsigned Mlp::outFeatures() const {
  assert(!Layers.empty());
  return Layers.back().outFeatures();
}
