//===- Server.h - Batched greedy-inference schedule server -------*- C++-*-===//
///
/// \file
/// A long-lived, in-process serving front end for a frozen policy: load
/// a trainer checkpoint once, then answer "optimize this module"
/// requests with the greedy schedule and its predicted speedup.
/// Requests enter as untrusted IR text through the importModule gate
/// (caps -> parser -> verifier -> sanitizer), so a hostile module is a
/// clean rejection, never a crash.
///
/// Serving shape (mirrors the training loop's): Workers worker threads
/// (one by default) drain the admission queue in batches of up to
/// BatchWidth requests each and roll every batch as one lockstep greedy
/// episode group through the shared RolloutEngine -- one policy GEMM
/// per step for the whole batch. All requests price through one
/// lock-striped CachingEvaluator, so ops shared across requests (and
/// repeated requests) hit the memo instead of re-pricing. Greedy
/// rollouts draw no RNG and a request's answer never depends on which
/// worker serves it or who shares its batch, so answers are
/// bitwise-identical whether a module is served alone, inside a mixed
/// batch, under concurrent clients, or at any worker count (ServeTest
/// pins all of these).
///
/// Admission is bounded: when the queue holds QueueCapacity requests,
/// submit rejects immediately with a reason instead of queueing
/// unboundedly (counted under robustness.server_queue_full); after
/// shutdown begins, submissions and still-queued requests reject under
/// robustness.server_shutdown. Checkpoint reloads (loadPolicy) take the
/// policy lock exclusively, so a batch is always served end-to-end by
/// one policy version -- no torn reads, no stale packed-f32 snapshots
/// (the agent's version-stamped inference cache covers the rebuild
/// race; ServeReloadTest hammers both under threads).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_SERVE_SERVER_H
#define MLIRRL_SERVE_SERVER_H

#include "ir/Parser.h"
#include "perf/Runner.h"
#include "rl/Ppo.h"
#include "rl/RolloutEngine.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

namespace mlirrl {

/// Server configuration. Env/Net must match the checkpoint the server
/// loads (loadPolicy rejects architecture mismatches cleanly).
struct ServeOptions {
  EnvConfig Env;
  NetConfig Net;
  /// Only the trainer scaffolding reads this (the server never trains);
  /// Seed feeds the internal trainer's RNG scaffolding too.
  PpoConfig Ppo;
  MachineModel Machine = MachineModel::xeonE5_2680v4();
  RunnerOptions Runner;
  /// Greedy-inference element type (F32 = packed float fast path).
  InferenceDtype Inference = InferenceDtype::F64;
  uint64_t Seed = 1234;
  /// Requests rolled together per lockstep batch (the serving-side
  /// analogue of the training batch width).
  unsigned BatchWidth = 8;
  /// Worker threads draining the queue (0 is treated as 1). Each worker
  /// serves whole batches independently; the policy lock, the striped
  /// memo and the engine's const rollout path make that safe, and
  /// because answers are batch- and worker-invariant, raising this
  /// changes throughput under concurrent clients, never results.
  unsigned Workers = 1;
  /// Admission bound: submissions beyond this many queued requests are
  /// rejected immediately with a reason (backpressure, not buffering).
  size_t QueueCapacity = 64;
  /// Entry budget / lock stripes of the shared cross-request memo.
  size_t MemoCapacity = 1u << 12;
  unsigned MemoShards = 16;
  /// Defensive cap on lockstep steps per served batch (episodes always
  /// terminate on their own; this bounds a pathological one).
  unsigned MaxEpisodeSteps = 1u << 16;
  /// Resource caps applied to incoming IR text.
  ImportLimits Limits;
};

/// One answered request.
struct ServeResponse {
  ModuleSchedule Schedule;
  /// Predicted speedup of Schedule over the unoptimized module.
  double Speedup = 1.0;
  /// The agent parameter version the schedule was computed under
  /// (bumps on every loadPolicy), so clients can tell reloads apart.
  uint64_t PolicyVersion = 0;
};

/// Monotone serving counters plus memo hit rates.
struct ServeStats {
  uint64_t Served = 0;
  uint64_t Batches = 0;
  uint64_t RejectedImport = 0;
  uint64_t RejectedQueueFull = 0;
  uint64_t RejectedShutdown = 0;
  uint64_t PolicyReloads = 0;
  /// Hit rates of the shared CachingEvaluator's whole-program and
  /// per-op tables since server construction.
  double ProgramMemoHitRate = 0.0;
  double OpMemoHitRate = 0.0;
};

/// The server. Construction starts the worker threads; destruction (or
/// shutdown()) stops them and rejects everything still queued.
class ScheduleServer {
public:
  explicit ScheduleServer(ServeOptions Opts);
  ~ScheduleServer();

  ScheduleServer(const ScheduleServer &) = delete;
  ScheduleServer &operator=(const ScheduleServer &) = delete;

  /// Loads a frozen policy from the trainer checkpoint at \p Path.
  /// Takes the policy lock exclusively: in-flight batches finish on
  /// the old policy first, later batches serve the new one. Validates
  /// before mutating -- on error the previous policy keeps serving.
  Expected<bool> loadPolicy(const std::string &Path);

  /// Submits one module (untrusted IR text). The import gate and the
  /// admission check run on the caller's thread, so a malformed module
  /// or a full queue fails the returned future immediately with a
  /// reason; an admitted request resolves when its batch is served.
  std::future<Expected<ServeResponse>> submitAsync(const std::string &IrText);

  /// Synchronous convenience: submit and wait.
  Expected<ServeResponse> optimize(const std::string &IrText);

  ServeStats stats() const;

  /// The engine's evaluator seam (the shared memo), e.g. for baselines
  /// priced like-for-like against served schedules.
  Evaluator &evaluator() { return Memo; }

  /// Stops all workers and rejects all queued requests. Idempotent;
  /// subsequent submissions reject with a shutdown reason.
  void shutdown();

  /// Test hooks: hold every worker between batches so admission
  /// behavior can be probed deterministically (a paused server still
  /// accepts and rejects at the gate, it just serves nothing).
  void pauseWorker();
  void resumeWorker();

private:
  struct Pending {
    Module M;
    std::promise<Expected<ServeResponse>> Promise;
  };

  void workerLoop();
  /// Serves one drained batch (policy lock held shared).
  void serveBatch(std::vector<Pending> &Batch);

  ServeOptions Options;
  Runner Run;
  /// The cross-request memo every served episode prices through.
  CachingEvaluator Memo;
  ActorCritic Agent;
  /// Exists to reuse the checkpoint restore path (loadCheckpoint
  /// validates archives end-to-end before touching the agent); the
  /// server never calls its training entry points.
  PpoTrainer Trainer;
  RolloutEngine Engine;

  /// Held shared while a batch is served, exclusively by loadPolicy.
  std::shared_mutex PolicyLock;

  mutable std::mutex QueueMutex;
  std::condition_variable QueueCv;
  std::deque<Pending> Queue;
  bool Stopping = false;
  bool Paused = false;

  std::atomic<uint64_t> Served{0};
  std::atomic<uint64_t> Batches{0};
  std::atomic<uint64_t> RejectedImport{0};
  std::atomic<uint64_t> RejectedQueueFull{0};
  std::atomic<uint64_t> RejectedShutdown{0};
  std::atomic<uint64_t> PolicyReloads{0};

  std::vector<std::thread> WorkerThreads;
};

} // namespace mlirrl

#endif // MLIRRL_SERVE_SERVER_H
