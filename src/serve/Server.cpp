//===- Server.cpp ---------------------------------------------------------===//

#include "serve/Server.h"

#include "env/Featurizer.h"
#include "rl/Checkpoint.h"
#include "support/Stats.h"

#include <algorithm>

using namespace mlirrl;

ScheduleServer::ScheduleServer(ServeOptions Opts)
    : Options(Opts), Run(Opts.Machine, Opts.Runner),
      Memo(Run, Opts.MemoCapacity, Opts.MemoShards),
      Agent(Opts.Env, Featurizer(Opts.Env).featureSize(), Opts.Net,
            Opts.Seed),
      Trainer(Agent, Memo, Opts.Ppo), Engine(Agent, Memo) {
  Agent.setInferenceDtype(Options.Inference);
  const unsigned Count = std::max(1u, Options.Workers);
  WorkerThreads.reserve(Count);
  for (unsigned I = 0; I < Count; ++I)
    WorkerThreads.emplace_back([this] { workerLoop(); });
}

ScheduleServer::~ScheduleServer() { shutdown(); }

Expected<bool> ScheduleServer::loadPolicy(const std::string &Path) {
  // Exclusive: waits for the in-flight batch (which holds the lock
  // shared) to finish, blocks the next batch until the swap is done.
  // loadCheckpoint validates the whole archive before mutating, so a
  // bad file leaves the serving policy untouched; a good one ends in
  // invalidateInferenceCache(), whose version stamp retires any
  // packed-f32 snapshot a racing rebuild might otherwise republish.
  std::unique_lock<std::shared_mutex> Lock(PolicyLock);
  Expected<bool> Result = loadCheckpoint(Trainer, Path);
  if (Result)
    PolicyReloads.fetch_add(1, std::memory_order_relaxed);
  return Result;
}

std::future<Expected<ServeResponse>>
ScheduleServer::submitAsync(const std::string &IrText) {
  // Import, admission and rejection all happen on the caller's thread:
  // the worker only ever sees verified modules, and a rejected caller
  // learns immediately instead of timing out against a full queue.
  auto RejectNow = [](std::string Reason) {
    std::promise<Expected<ServeResponse>> P;
    P.set_value(makeError<ServeResponse>(std::move(Reason)));
    return P.get_future();
  };

  Expected<Module> Imported = importModule(IrText, Options.Limits);
  if (!Imported) {
    // importModule already counted robustness.import_rejected.
    RejectedImport.fetch_add(1, std::memory_order_relaxed);
    return RejectNow("import rejected: " + Imported.getError());
  }

  std::unique_lock<std::mutex> Lock(QueueMutex);
  if (Stopping) {
    Lock.unlock();
    recordRobustnessEvent(RobustnessEvent::ServerShutdown);
    RejectedShutdown.fetch_add(1, std::memory_order_relaxed);
    return RejectNow("server is shutting down");
  }
  if (Queue.size() >= Options.QueueCapacity) {
    Lock.unlock();
    recordRobustnessEvent(RobustnessEvent::ServerQueueFull);
    RejectedQueueFull.fetch_add(1, std::memory_order_relaxed);
    return RejectNow(
        "admission queue full (" + std::to_string(Options.QueueCapacity) +
        " requests queued); retry later");
  }
  Pending P;
  P.M = std::move(Imported.get());
  std::future<Expected<ServeResponse>> F = P.Promise.get_future();
  Queue.push_back(std::move(P));
  Lock.unlock();
  QueueCv.notify_one();
  return F;
}

Expected<ServeResponse> ScheduleServer::optimize(const std::string &IrText) {
  return submitAsync(IrText).get();
}

void ScheduleServer::serveBatch(std::vector<Pending> &Batch) {
  std::vector<const Module *> Samples;
  Samples.reserve(Batch.size());
  for (const Pending &P : Batch)
    Samples.push_back(&P.M);

  RolloutEngine::Options Opts;
  Opts.RecordSchedule = true;
  Opts.MaxGroupSteps = Options.MaxEpisodeSteps;

  // Shared: concurrent with nothing but loadPolicy's exclusive swap,
  // so the whole batch is computed under one policy version.
  std::shared_lock<std::shared_mutex> Lock(PolicyLock);
  uint64_t Version = Agent.parameterVersion();
  std::vector<RolloutEngine::Episode> Episodes = Engine.greedyGroup(Samples, Opts);
  Lock.unlock();

  // Count before fulfilling: a client woken by its future must see
  // stats() that already include its own request.
  Served.fetch_add(Batch.size(), std::memory_order_relaxed);
  Batches.fetch_add(1, std::memory_order_relaxed);
  for (size_t I = 0; I < Batch.size(); ++I) {
    ServeResponse R;
    R.Schedule = std::move(Episodes[I].Schedule);
    R.Speedup = Episodes[I].Speedup;
    R.PolicyVersion = Version;
    Batch[I].Promise.set_value(std::move(R));
  }
}

void ScheduleServer::workerLoop() {
  for (;;) {
    std::vector<Pending> Batch;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCv.wait(Lock, [this] {
        return Stopping || (!Queue.empty() && !Paused);
      });
      if (Stopping)
        return; // shutdown() rejects whatever is still queued
      unsigned Take = std::min<size_t>(Queue.size(), Options.BatchWidth);
      Batch.reserve(Take);
      for (unsigned I = 0; I < Take; ++I) {
        Batch.push_back(std::move(Queue.front()));
        Queue.pop_front();
      }
    }
    serveBatch(Batch);
  }
}

void ScheduleServer::shutdown() {
  std::deque<Pending> Orphaned;
  std::vector<std::thread> ToJoin;
  {
    std::unique_lock<std::mutex> Lock(QueueMutex);
    if (Stopping && WorkerThreads.empty() && Queue.empty())
      return;
    Stopping = true;
    Orphaned.swap(Queue);
    // Claim the threads under the lock (making repeat shutdowns no-ops)
    // but join outside it: workers must be able to take QueueMutex to
    // observe Stopping and exit.
    ToJoin.swap(WorkerThreads);
  }
  QueueCv.notify_all();
  for (std::thread &W : ToJoin)
    if (W.joinable())
      W.join();
  for (Pending &P : Orphaned) {
    recordRobustnessEvent(RobustnessEvent::ServerShutdown);
    RejectedShutdown.fetch_add(1, std::memory_order_relaxed);
    P.Promise.set_value(
        makeError<ServeResponse>("server shut down before serving"));
  }
}

ServeStats ScheduleServer::stats() const {
  ServeStats S;
  S.Served = Served.load(std::memory_order_relaxed);
  S.Batches = Batches.load(std::memory_order_relaxed);
  S.RejectedImport = RejectedImport.load(std::memory_order_relaxed);
  S.RejectedQueueFull = RejectedQueueFull.load(std::memory_order_relaxed);
  S.RejectedShutdown = RejectedShutdown.load(std::memory_order_relaxed);
  S.PolicyReloads = PolicyReloads.load(std::memory_order_relaxed);
  S.ProgramMemoHitRate = Memo.getCounters().hitRate();
  S.OpMemoHitRate = Memo.getOpCounters().hitRate();
  return S;
}

void ScheduleServer::pauseWorker() {
  std::lock_guard<std::mutex> Lock(QueueMutex);
  Paused = true;
}

void ScheduleServer::resumeWorker() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Paused = false;
  }
  QueueCv.notify_all();
}
