//===- Fuzz.cpp -----------------------------------------------------------===//

#include "fuzz/Fuzz.h"

#include "env/Environment.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "transforms/PostTransformChecks.h"

#include <algorithm>
#include <cmath>

using namespace mlirrl;

//===----------------------------------------------------------------------===//
// Seed sources
//===----------------------------------------------------------------------===//

namespace {

/// Small valid modules the mutator starts from. Each parses, verifies
/// and sanitizes under fuzzImportLimits().
const char *SeedSources[] = {
    // Plain matmul.
    R"(module @seed_matmul {
  %A = tensor<64x32xf32>
  %B = tensor<32x48xf32>
  %C = linalg.matmul {
    bounds = [64, 48, 32],
    iterators = [parallel, parallel, reduction],
    maps = [(d0, d1, d2) -> (d0, d2), (d0, d1, d2) -> (d2, d1),
            (d0, d1, d2) -> (d0, d1)],
    arith = {mul: 1, add: 1}
  } ins(%A, %B) : tensor<64x48xf32>
})",
    // Fusable matmul + relu chain.
    R"(module @seed_chain {
  %x = tensor<32x96xf32>
  %w = tensor<96x24xf32>
  %h = linalg.matmul {
    bounds = [32, 24, 96],
    iterators = [parallel, parallel, reduction],
    maps = [(d0, d1, d2) -> (d0, d2), (d0, d1, d2) -> (d2, d1),
            (d0, d1, d2) -> (d0, d1)],
    arith = {mul: 1, add: 1}
  } ins(%x, %w) : tensor<32x24xf32>
  %a = linalg.relu {
    bounds = [32, 24],
    iterators = [parallel, parallel],
    maps = [(d0, d1) -> (d0, d1), (d0, d1) -> (d0, d1)],
    arith = {max: 1}
  } ins(%h) : tensor<32x24xf32>
})",
    // Degenerate 1-D reduction (single loop, non-dividing trip).
    R"(module @seed_sum {
  %v = tensor<193xf32>
  %s = linalg.reduce {
    bounds = [193],
    iterators = [reduction],
    maps = [(d0) -> (d0), (d0) -> (0)],
    arith = {add: 1}
  } ins(%v) : tensor<1xf32>
})",
    // Elementwise over an awkward odd shape.
    R"(module @seed_odd {
  %t = tensor<7x31xf32>
  %r = linalg.relu {
    bounds = [7, 31],
    iterators = [parallel, parallel],
    maps = [(d0, d1) -> (d0, d1), (d0, d1) -> (d0, d1)],
    arith = {max: 1}
  } ins(%t) : tensor<7x31xf32>
})",
};
constexpr unsigned NumSeedSources = sizeof(SeedSources) / sizeof(char *);

/// Boundary numbers the mutator splices over digit runs: zero, negatives,
/// every cap in ImportLimits, and values past int64 midpoints.
const char *BoundaryNumbers[] = {
    "0",        "1",        "2",         "16777215",  "16777216",
    "16777217", "8388608",  "4294967296", "-1",       "-8",
    "9223372036854775807", "99999999999999999999", "511", "512", "513",
};
constexpr unsigned NumBoundaryNumbers =
    sizeof(BoundaryNumbers) / sizeof(char *);

const char GarbageAlphabet[] =
    "abcdxz0189%<>[]{}(),:=@*+- \n\t_.#$\\\"'^~|&;";

} // namespace

//===----------------------------------------------------------------------===//
// Input generation
//===----------------------------------------------------------------------===//

ImportLimits mlirrl::fuzzImportLimits() {
  ImportLimits L;
  L.MaxSourceBytes = 1u << 16;
  L.MaxTokens = 1u << 13;
  L.MaxOps = 6;
  L.MaxValues = 32;
  L.MaxLoops = 6;
  L.MaxDimSize = 512;
  L.MaxIterationSpace = int64_t(1) << 24;
  L.MaxAffineTerms = 16;
  return L;
}

namespace {

std::string mutateSource(Rng &R) {
  std::string S = SeedSources[R.nextBounded(NumSeedSources)];
  unsigned Rounds = 1 + static_cast<unsigned>(R.nextBounded(8));
  for (unsigned I = 0; I < Rounds && !S.empty(); ++I) {
    switch (R.nextBounded(7)) {
    case 0: { // Flip one byte to a random printable.
      S[R.choiceIndex(S)] =
          GarbageAlphabet[R.nextBounded(sizeof(GarbageAlphabet) - 1)];
      break;
    }
    case 1: { // Insert a short garbage run.
      size_t At = R.nextBounded(S.size() + 1);
      std::string Run;
      for (unsigned J = 0, N = 1 + R.nextBounded(6); J < N; ++J)
        Run += GarbageAlphabet[R.nextBounded(sizeof(GarbageAlphabet) - 1)];
      S.insert(At, Run);
      break;
    }
    case 2: { // Delete a span.
      size_t At = R.choiceIndex(S);
      S.erase(At, 1 + R.nextBounded(16));
      break;
    }
    case 3: { // Duplicate a span (grows nesting/op counts).
      size_t At = R.choiceIndex(S);
      size_t Len = std::min<size_t>(1 + R.nextBounded(32), S.size() - At);
      S.insert(At, S.substr(At, Len));
      break;
    }
    case 4: { // Splice the tail of another seed source.
      const std::string Other = SeedSources[R.nextBounded(NumSeedSources)];
      S = S.substr(0, R.nextBounded(S.size() + 1)) +
          Other.substr(R.nextBounded(Other.size()));
      break;
    }
    case 5: { // Replace a digit run with a boundary number.
      size_t At = S.find_first_of("0123456789", R.choiceIndex(S));
      if (At == std::string::npos)
        break;
      size_t End = S.find_first_not_of("0123456789", At);
      if (End == std::string::npos)
        End = S.size();
      S.replace(At, End - At,
                BoundaryNumbers[R.nextBounded(NumBoundaryNumbers)]);
      break;
    }
    case 6: { // Truncate.
      S.resize(R.nextBounded(S.size() + 1));
      break;
    }
    }
  }
  return S;
}

/// A structurally random module: correct by construction most of the
/// time (so the accepted path gets real coverage), with deliberate
/// flaws and cap-busting shapes mixed in.
std::string makeStructuredSource(Rng &R) {
  static const int64_t Sizes[] = {1,  2,   3,   5,   7,    8,   16,
                                  31, 64,  100, 128, 511,  512, 513,
                                  1024, 100000};
  auto Size = [&] {
    return Sizes[R.nextBounded(sizeof(Sizes) / sizeof(Sizes[0]))];
  };

  // The flaw injected into this module, if any.
  enum Flaw { None, BoundMismatch, UndefinedOperand, RankMismatch };
  Flaw F = R.nextBernoulli(0.25)
               ? static_cast<Flaw>(1 + R.nextBounded(3))
               : None;

  std::string S = "module @fuzz {\n";
  struct Val {
    std::string Name;
    int64_t Rows, Cols;
  };
  std::vector<Val> Vals;
  unsigned NumOps = 1 + static_cast<unsigned>(R.nextBounded(4));
  unsigned NextId = 0;
  auto Fresh = [&](int64_t Rows, int64_t Cols) {
    Val V{"%v" + std::to_string(NextId++), Rows, Cols};
    S += formatString("  %s = tensor<%lldx%lldxf32>\n", V.Name.c_str(),
                      static_cast<long long>(Rows),
                      static_cast<long long>(Cols));
    Vals.push_back(V);
    return V;
  };

  for (unsigned Op = 0; Op < NumOps; ++Op) {
    bool Matmul = R.nextBernoulli(0.5);
    std::string Result = "%v" + std::to_string(NextId++);
    if (Matmul) {
      int64_t M = Size(), N = Size(), K = Size();
      Val A = (Vals.empty() || R.nextBernoulli(0.5))
                  ? Fresh(M, K)
                  : Vals[R.choiceIndex(Vals)];
      M = A.Rows;
      K = A.Cols;
      Val B = Fresh(K, N);
      if (F == BoundMismatch && Op + 1 == NumOps)
        ++K; // bounds no longer match the operand shapes
      std::string InA = (F == UndefinedOperand && Op + 1 == NumOps)
                            ? "%undefined"
                            : A.Name;
      S += formatString(
          "  %s = linalg.matmul {\n"
          "    bounds = [%lld, %lld, %lld],\n"
          "    iterators = [parallel, parallel, reduction],\n"
          "    maps = [(d0, d1, d2) -> (d0, d2), (d0, d1, d2) -> (d2, d1),\n"
          "            (d0, d1, d2) -> (d0, d1)],\n"
          "    arith = {mul: 1, add: 1}\n"
          "  } ins(%s, %s) : tensor<%lldx%lldxf32>\n",
          Result.c_str(), static_cast<long long>(M),
          static_cast<long long>(N), static_cast<long long>(K), InA.c_str(),
          B.Name.c_str(), static_cast<long long>(M),
          static_cast<long long>(N));
      Vals.push_back(Val{Result, M, N});
    } else {
      Val In = Vals.empty() ? Fresh(Size(), Size()) : Vals[R.choiceIndex(Vals)];
      const char *OutMap =
          (F == RankMismatch && Op + 1 == NumOps) ? "(d0)" : "(d0, d1)";
      S += formatString(
          "  %s = linalg.relu {\n"
          "    bounds = [%lld, %lld],\n"
          "    iterators = [parallel, parallel],\n"
          "    maps = [(d0, d1) -> (d0, d1), (d0, d1) -> %s],\n"
          "    arith = {max: 1}\n"
          "  } ins(%s) : tensor<%lldx%lldxf32>\n",
          Result.c_str(), static_cast<long long>(In.Rows),
          static_cast<long long>(In.Cols), OutMap, In.Name.c_str(),
          static_cast<long long>(In.Rows), static_cast<long long>(In.Cols));
      Vals.push_back(Val{Result, In.Rows, In.Cols});
    }
  }
  S += "}\n";
  return S;
}

std::string makeGarbage(Rng &R) {
  std::string S;
  size_t Len = R.nextBounded(512);
  for (size_t I = 0; I < Len; ++I)
    S += R.nextBernoulli(0.9)
             ? GarbageAlphabet[R.nextBounded(sizeof(GarbageAlphabet) - 1)]
             : static_cast<char>(R.nextBounded(256));
  return S;
}

} // namespace

std::string mlirrl::makeFuzzInput(uint64_t Seed, unsigned Index) {
  Rng R(Rng::deriveSeed(Seed, Index));
  double Pick = R.nextDouble();
  if (Pick < 0.50)
    return mutateSource(R);
  if (Pick < 0.85)
    return makeStructuredSource(R);
  return makeGarbage(R);
}

//===----------------------------------------------------------------------===//
// One gate input
//===----------------------------------------------------------------------===//

std::optional<Module> mlirrl::fuzzOneInput(const std::string &Input,
                                           Evaluator &Eval,
                                           const ImportLimits &Limits,
                                           FuzzStats &Stats) {
  ++Stats.ParserInputs;
  auto Fail = [&](const std::string &Msg) {
    Stats.Violations.push_back(FuzzViolation{"parser", Input, Msg});
  };

  Expected<Module> Imported = importModule(Input, Limits);
  if (!Imported) {
    ++Stats.Rejected;
    if (Imported.getError().empty())
      Fail("rejection without a diagnostic");
    return std::nullopt;
  }
  ++Stats.Accepted;
  Module M = *Imported;

  // Accepted => the module re-verifies and re-sanitizes (the gate is
  // idempotent) ...
  std::string Err;
  if (!verifyModule(M, Err)) {
    Fail("accepted module fails re-verification: " + Err);
    return std::nullopt;
  }
  if (!sanitizeModule(M, Limits, Err)) {
    Fail("accepted module fails re-sanitization: " + Err);
    return std::nullopt;
  }

  // ... the unoptimized baseline materializes ...
  Expected<std::vector<LoopNest>> Baseline =
      materializeModuleChecked(M, ModuleSchedule());
  if (!Baseline) {
    Fail("accepted module has no legal baseline: " + Baseline.getError());
    return std::nullopt;
  }

  // ... and its price is finite and positive.
  double Seconds = Eval.timeNests(*Baseline);
  if (!std::isfinite(Seconds) || Seconds <= 0.0) {
    Fail(formatString("accepted module prices to %g", Seconds));
    return std::nullopt;
  }
  return M;
}

//===----------------------------------------------------------------------===//
// One episode
//===----------------------------------------------------------------------===//

namespace {

/// A raw action: fields drawn over ranges that straddle the valid
/// bounds, so in-range and out-of-range values both occur. The
/// environment must take all of them without crashing.
AgentAction randomAction(Rng &R, const EnvConfig &Config) {
  AgentAction A;
  A.Kind = static_cast<TransformKind>(R.nextBounded(NumTransformKinds));
  A.TileSizeIdx.resize(R.nextBounded(Config.MaxLoops + 2));
  for (unsigned &Idx : A.TileSizeIdx)
    Idx = static_cast<unsigned>(
        R.nextBounded(Config.TileCandidates.size() + 2));
  A.EnumeratedChoice =
      static_cast<unsigned>(R.nextBounded(3 * Config.MaxLoops + 1));
  A.PointerChoice =
      static_cast<unsigned>(R.nextBounded(Config.MaxLoops + 2));
  A.FlatChoice = static_cast<unsigned>(R.nextBounded(128));
  return A;
}

} // namespace

void mlirrl::fuzzOneEpisode(const Module &M, uint64_t EpisodeSeed,
                            Evaluator &Eval, unsigned MaxSteps,
                            FuzzStats &Stats) {
  ++Stats.Episodes;
  Rng R(EpisodeSeed);

  // Draw the configuration: every ablation axis, checks always on.
  EnvConfig Config = EnvConfig::laptop();
  Config.ActionSpace = R.nextBernoulli(0.5) ? ActionSpaceMode::MultiDiscrete
                                            : ActionSpaceMode::Flat;
  Config.Interchange = R.nextBernoulli(0.5) ? InterchangeMode::LevelPointers
                                            : InterchangeMode::Enumerated;
  Config.Reward =
      R.nextBernoulli(0.75) ? RewardMode::Final : RewardMode::Immediate;
  Config.Incremental = R.nextBernoulli(0.5);
  Config.PostTransformChecks = true;

  auto Fail = [&](const std::string &Msg) {
    Stats.Violations.push_back(FuzzViolation{
        "episode",
        formatString("seed=%llu\n",
                     static_cast<unsigned long long>(EpisodeSeed)) +
            printModule(M),
        Msg});
  };

  Environment Env(Config, Eval, M);
  unsigned Steps = 0;
  while (!Env.isDone() && Steps < MaxSteps) {
    Environment::StepOutcome Out = Env.step(randomAction(R, Config));
    ++Steps;
    ++Stats.Steps;
    if (!std::isfinite(Out.Reward)) {
      Fail(formatString("non-finite reward %g at step %u", Out.Reward,
                        Steps));
      return;
    }
    // The state the step left behind must satisfy every schedule
    // invariant. getNest only fills caches, so the cast is safe.
    std::string Err;
    if (!verifyScheduleState(const_cast<ScheduleState &>(Env.getState()),
                             Err)) {
      Fail(formatString("state invariant broken at step %u: ", Steps) + Err);
      return;
    }
  }

  if (!Env.isDone()) {
    Fail(formatString("episode still live after %u steps", MaxSteps));
    return;
  }

  double Speedup = Env.currentSpeedup();
  if (!std::isfinite(Speedup) || Speedup <= 0.0) {
    Fail(formatString("final speedup is %g", Speedup));
    return;
  }

  // A finished episode must take further actions inertly.
  Environment::StepOutcome Post = Env.step(randomAction(R, Config));
  if (!Post.Done || Post.Reward != 0.0)
    Fail("step after done is not inert");
}

//===----------------------------------------------------------------------===//
// Campaign
//===----------------------------------------------------------------------===//

std::string FuzzStats::summary() const {
  return formatString(
      "%u parser inputs (%u accepted, %u rejected), %u episodes, "
      "%llu steps, %zu violations",
      ParserInputs, Accepted, Rejected, Episodes,
      static_cast<unsigned long long>(Steps), Violations.size());
}

FuzzStats mlirrl::runFuzzCampaign(
    const FuzzOptions &Opts,
    const std::function<void(unsigned, const std::string &)> &InputHook) {
  FuzzStats Stats;
  ImportLimits Limits = fuzzImportLimits();
  CostModelEvaluator Eval(MachineModel::xeonE5_2680v4());

  // Phase 1: the gate. Keep a bounded pool of accepted modules, biased
  // toward small ones so phase 2 stays cheap.
  std::vector<Module> Pool;
  for (unsigned I = 0; I < Opts.ParserInputs; ++I) {
    std::string Input = makeFuzzInput(Opts.Seed, I);
    if (InputHook)
      InputHook(I, Input);
    std::optional<Module> M = fuzzOneInput(Input, Eval, Limits, Stats);
    if (M && Pool.size() < 64)
      Pool.push_back(std::move(*M));
  }

  // Phase 2: episodes. Fall back to the seed sources if mutation was
  // too destructive to leave a pool.
  if (Pool.empty()) {
    for (const char *Src : SeedSources)
      if (std::optional<Module> M =
              fuzzOneInput(Src, Eval, Limits, Stats))
        Pool.push_back(std::move(*M));
  }
  Rng PickR(Rng::deriveSeed(Opts.Seed, 0xE5));
  for (unsigned E = 0; E < Opts.Episodes && !Pool.empty(); ++E)
    fuzzOneEpisode(Pool[PickR.choiceIndex(Pool)],
                   Rng::deriveSeed(Opts.Seed, 0x10000 + E), Eval,
                   Opts.MaxEpisodeSteps, Stats);
  return Stats;
}
