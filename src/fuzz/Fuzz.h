//===- Fuzz.h - Deterministic fuzzing engine ---------------------*- C++-*-===//
///
/// \file
/// Seed-driven fuzzing over the untrusted-module pipeline. Two attack
/// surfaces, one engine shared by the ctest regression (tests/fuzz) and
/// the CI smoke binary (examples/fuzz_smoke.cpp):
///
///  * Parser/gate fuzzing: deterministic mutations of valid sources,
///    structurally random modules (some deliberately flawed, some
///    oversized) and raw garbage, fed through importModule. Every input
///    must come back as either a diagnosed rejection or a module that
///    re-verifies, re-sanitizes and prices to a finite positive baseline
///    -- never a crash or a fatal.
///
///  * Episode fuzzing: random agent actions -- including out-of-range
///    indices the policy could never emit -- driven through Environment
///    over imported modules, with verifyScheduleState re-checked after
///    every step and all rewards finite.
///
/// Everything is a pure function of the seed: a failure reproduces from
/// (seed, index) alone, and the offending input text is captured in the
/// violation so it can be checked into tests/fuzz/corpus/.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_FUZZ_FUZZ_H
#define MLIRRL_FUZZ_FUZZ_H

#include "ir/Parser.h"
#include "perf/Evaluator.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace mlirrl {

/// One invariant violation found by the fuzzer. Input holds the full
/// source text (parser stage) or the printed module plus episode seed
/// (episode stage), so the case can be replayed and checked into the
/// corpus.
struct FuzzViolation {
  std::string Stage;
  std::string Input;
  std::string Message;
};

/// Campaign counters + violations.
struct FuzzStats {
  unsigned ParserInputs = 0;
  unsigned Accepted = 0;
  unsigned Rejected = 0;
  unsigned Episodes = 0;
  uint64_t Steps = 0;
  std::vector<FuzzViolation> Violations;

  bool ok() const { return Violations.empty(); }
  std::string summary() const;
};

/// Tightened limits for fuzzing: small enough that every accepted
/// module is cheap to materialize and price thousands of times, while
/// still exercising every cap in the gate.
ImportLimits fuzzImportLimits();

/// The \p Index-th parser input of a campaign seeded with \p Seed --
/// deterministic, independent of all other indices. Mixes mutated valid
/// sources, structurally random modules and raw garbage.
std::string makeFuzzInput(uint64_t Seed, unsigned Index);

/// Feeds one input through the import gate and, on acceptance, checks
/// the accepted-module invariants (sanitizer idempotence, baseline
/// materializes, price finite and positive). Appends violations to
/// \p Stats; returns the module when accepted.
std::optional<Module> fuzzOneInput(const std::string &Input, Evaluator &Eval,
                                   const ImportLimits &Limits,
                                   FuzzStats &Stats);

/// Drives one random-action episode over \p M under a randomly drawn
/// environment configuration (action space, interchange mode, reward
/// mode, incremental on/off; post-transform checks always on). Asserts
/// after every step: finite reward, verifyScheduleState clean; at the
/// end: episode terminated, speedup finite and positive, stepping the
/// finished episode stays inert.
void fuzzOneEpisode(const Module &M, uint64_t EpisodeSeed, Evaluator &Eval,
                    unsigned MaxSteps, FuzzStats &Stats);

struct FuzzOptions {
  uint64_t Seed = 0x6d6c6972726cULL; // "mlirrl"
  unsigned ParserInputs = 1000;
  unsigned Episodes = 25;
  /// Hard cap on raw step() calls per episode (pointer sub-steps
  /// included); an episode still live past it is itself a violation.
  unsigned MaxEpisodeSteps = 4000;
};

/// The full campaign: ParserInputs gate inputs, then Episodes random
/// episodes over the accepted-module pool (falling back to built-in
/// sources when mutation yields too few acceptances). \p InputHook, when
/// set, sees every parser input before it runs -- the smoke binary
/// persists it so a hard crash leaves the offending input on disk.
FuzzStats
runFuzzCampaign(const FuzzOptions &Opts,
                const std::function<void(unsigned, const std::string &)>
                    &InputHook = nullptr);

} // namespace mlirrl

#endif // MLIRRL_FUZZ_FUZZ_H
