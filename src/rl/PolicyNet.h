//===- PolicyNet.h - The actor network (Fig. 3 / Fig. 4) ---------*- C++-*-===//
///
/// \file
/// The policy network of Sec. V-A: a producer-consumer LSTM embedding
/// (the two representation vectors are fed sequentially, the final hidden
/// state is the embedding), a backbone of Dense+ReLU layers, and output
/// heads: transformation selection (6-way softmax), three tiled
/// transformation heads (N x M, row-wise softmax), and an interchange
/// head (3N-6 enumerated candidates or N level pointers). In the flat
/// ablation a single flat head replaces all of them.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_RL_POLICYNET_H
#define MLIRRL_RL_POLICYNET_H

#include "env/Environment.h"
#include "nn/Lstm.h"

namespace mlirrl {

/// Network width configuration. Paper defaults: LSTM(512) and three
/// Dense(512) backbone layers; benches use narrower nets for
/// laptop-scale runs (the architecture is unchanged).
struct NetConfig {
  unsigned LstmHidden = 512;
  unsigned BackboneHidden = 512;
  unsigned BackboneDepth = 3;
};

/// The actor.
class PolicyNet {
public:
  PolicyNet(const EnvConfig &Env, unsigned FeatureSize, NetConfig Net,
            Rng &Rng);

  /// All head logits for a batch of observations, one row per
  /// observation (graph-alive tensors). Every head is one fused linear
  /// over the shared backbone features, so a B-observation batch costs
  /// one GEMM per layer instead of B GEMVs. Rows are independent: row r
  /// is bitwise-identical to forward({&Obs_r}) (the blocked GEMM
  /// accumulates each output element in the same K order for every
  /// batch size).
  struct Heads {
    nn::Tensor TransformLogits;               // B x 6
    std::vector<nn::Tensor> TileLogits;       // 3 heads, each B x (N*M)
    nn::Tensor InterchangeLogits;             // B x interchangeHeadSize
    nn::Tensor FlatLogits;                    // flat mode only
  };

  Heads forward(const std::vector<const Observation *> &Batch) const;

  /// Single-observation convenience: a batch of one.
  Heads forward(const Observation &Obs) const { return forward({&Obs}); }

  /// The tile head index for a tiled transformation kind (0..2).
  static unsigned tileHeadIndex(TransformKind Kind);

  /// Carves the per-level logits block [B x M] out of a tile head.
  nn::Tensor tileRow(const Heads &H, unsigned HeadIdx, unsigned Level) const;

  std::vector<nn::Tensor> parameters() const;

  const EnvConfig &getEnvConfig() const { return Env; }

  /// Compresses one observation field across the batch into the sparse
  /// form the LSTM gates consume (shared by the f64 embedding and the
  /// packed f32 inference path).
  static std::shared_ptr<const nn::SparseRows>
  compressRows(const std::vector<const Observation *> &Batch,
               const std::vector<double> Observation::*Field);

private:
  friend class PolicyNetF32; // packs the layers into float copies
  nn::Tensor embed(const std::vector<const Observation *> &Batch) const;

  EnvConfig Env;
  ActionSpaceInfo Space;
  nn::LstmCell Lstm;
  nn::Mlp Backbone;
  nn::Linear TransformHead;
  std::vector<nn::Linear> TileHeads;
  nn::Linear InterchangeHead;
  nn::Linear FlatHead;
  bool FlatMode;
};

/// The critic: identical embedding + backbone, scalar value head
/// (Sec. V-B).
class ValueNet {
public:
  ValueNet(const EnvConfig &Env, unsigned FeatureSize, NetConfig Net,
           Rng &Rng);

  /// Batched value estimates [B x 1], one row per observation.
  nn::Tensor forward(const std::vector<const Observation *> &Batch) const;
  nn::Tensor forward(const Observation &Obs) const { return forward({&Obs}); }
  std::vector<nn::Tensor> parameters() const;

private:
  nn::LstmCell Lstm;
  nn::Mlp Backbone;
  nn::Linear Head;
};

} // namespace mlirrl

#endif // MLIRRL_RL_POLICYNET_H
