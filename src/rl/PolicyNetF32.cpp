//===- PolicyNetF32.cpp ---------------------------------------------------===//

#include "rl/PolicyNetF32.h"

#include <cassert>

using namespace mlirrl;
using namespace mlirrl::nn;

PolicyNetF32::PolicyNetF32(const PolicyNet &Net)
    : Env(Net.Env), FlatMode(Net.FlatMode), Lstm(LstmCellF32::pack(Net.Lstm)),
      Backbone(MlpF32::pack(Net.Backbone)),
      TransformHead(LinearF32::pack(Net.TransformHead)),
      InterchangeHead(LinearF32::pack(Net.InterchangeHead)),
      FlatHead(LinearF32::pack(Net.FlatHead)) {
  for (const Linear &Head : Net.TileHeads)
    TileHeads.push_back(LinearF32::pack(Head));
}

PolicyNetF32::Heads
PolicyNetF32::forward(const std::vector<const Observation *> &Batch) const {
  assert(!Batch.empty() && "empty observation batch");
  // Producer first, consumer second, like PolicyNet::embed.
  MatF32 Embedding = Lstm.runSequenceSparse(
      {PolicyNet::compressRows(Batch, &Observation::Producer),
       PolicyNet::compressRows(Batch, &Observation::Consumer)});
  MatF32 Features = Backbone.forward(Embedding);
  Heads H;
  if (FlatMode) {
    H.FlatLogits = FlatHead.forward(Features);
    return H;
  }
  H.TransformLogits = TransformHead.forward(Features);
  for (const LinearF32 &Head : TileHeads)
    H.TileLogits.push_back(Head.forward(Features));
  H.InterchangeLogits = InterchangeHead.forward(Features);
  return H;
}

const float *PolicyNetF32::tileRow(const Heads &H, unsigned HeadIdx,
                                   unsigned Level, unsigned Row) const {
  return H.TileLogits.at(HeadIdx).row(Row) + Level * Env.NumTileSizes;
}
