//===- MlirRl.cpp ---------------------------------------------------------===//

#include "rl/MlirRl.h"

#include "env/Featurizer.h"

using namespace mlirrl;

MlirRlOptions MlirRlOptions::laptop() {
  MlirRlOptions O;
  O.Env = EnvConfig::laptop();
  O.Net.LstmHidden = 48;
  O.Net.BackboneHidden = 48;
  O.Net.BackboneDepth = 3;
  O.Ppo.SamplesPerIteration = 16;
  O.Ppo.MinibatchSize = 32;
  O.Iterations = 60;
  return O;
}

MlirRl::MlirRl(MlirRlOptions Options)
    : Options(Options), Run(Options.Machine, Options.Runner),
      // The memo is only sound over a deterministic inner evaluator:
      // with noise on, every entry would freeze one draw, so the
      // trainer falls back to the bare Runner.
      Memo(Options.MemoizeEvaluations && !Options.Runner.Noise
               ? std::make_unique<CachingEvaluator>(Run, Options.MemoCapacity,
                                                    Options.MemoShards)
               : nullptr),
      Agent(Options.Env, Featurizer(Options.Env).featureSize(), Options.Net,
            Options.Seed),
      Trainer(Agent, evaluator(), Options.Ppo) {
  Agent.setInferenceDtype(Options.Inference);
}

std::vector<PpoIterationStats> MlirRl::train(
    const std::vector<Module> &Dataset,
    const std::function<void(unsigned, const PpoIterationStats &)>
        &PerIteration) {
  std::vector<PpoIterationStats> History;
  History.reserve(Options.Iterations);
  for (unsigned I = 0; I < Options.Iterations; ++I) {
    PpoIterationStats Stats = Trainer.trainIteration(Dataset);
    if (PerIteration)
      PerIteration(I, Stats);
    History.push_back(Stats);
  }
  return History;
}

double MlirRl::optimize(const Module &M, ModuleSchedule *Schedule) {
  return Trainer.evaluate(M, Schedule);
}
