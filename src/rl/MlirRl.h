//===- MlirRl.h - Top-level system facade ------------------------*- C++-*-===//
///
/// \file
/// MLIR RL as a downstream user consumes it: construct with a
/// configuration, train on a dataset of modules, then optimize modules
/// with the learned policy. This is the public entry point the examples
/// and the benchmark harness use.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_RL_MLIRRL_H
#define MLIRRL_RL_MLIRRL_H

#include "perf/Runner.h"
#include "rl/Ppo.h"

#include <functional>
#include <memory>

namespace mlirrl {

/// Full system configuration.
struct MlirRlOptions {
  EnvConfig Env;
  NetConfig Net;
  PpoConfig Ppo;
  MachineModel Machine = MachineModel::xeonE5_2680v4();
  RunnerOptions Runner;
  /// Training iterations (each collects Ppo.SamplesPerIteration
  /// episodes and performs Ppo.UpdateEpochs update passes).
  unsigned Iterations = 100;
  uint64_t Seed = 1234;

  /// Element type for greedy policy inference (optimize() rollouts).
  /// F64 (the default) keeps every forward pass on the
  /// bitwise-deterministic double path; F32 routes greedy inference
  /// through a packed float copy of the policy on the float SIMD GEMM
  /// kernels (~2x the logits throughput, float-level relative error --
  /// bounded by tests/rl/InferenceF32Test). Training is unaffected
  /// either way.
  InferenceDtype Inference = InferenceDtype::F64;

  /// Memoize prices in one lock-striped CachingEvaluator wrapped around
  /// the Runner and shared by every collector thread and VecEnv group
  /// (the whole-program and per-op tables of perf/Evaluator.h). On by
  /// default; automatically disabled when Runner.Noise is set, since
  /// caching a noisy measurement would freeze one draw forever. Values
  /// are deterministic, so training trajectories are bitwise-identical
  /// with the memo on or off (DeterminismMatrixTest sweeps both).
  bool MemoizeEvaluations = true;
  /// Total entry budget of each shared memo table.
  size_t MemoCapacity = 1u << 12;
  /// Lock stripes per table (rounded up to a power of two; 1 = the
  /// global-lock baseline).
  unsigned MemoShards = 16;

  /// A small, fast preset for laptop-scale experiments (same
  /// architecture, narrower nets, fewer samples per iteration).
  static MlirRlOptions laptop();
};

/// The trained system.
class MlirRl {
public:
  explicit MlirRl(MlirRlOptions Options);

  /// Trains on \p Dataset; \p PerIteration (optional) observes progress.
  std::vector<PpoIterationStats>
  train(const std::vector<Module> &Dataset,
        const std::function<void(unsigned, const PpoIterationStats &)>
            &PerIteration = nullptr);

  /// Optimizes one module with the greedy policy; returns the speedup
  /// over the unoptimized baseline.
  double optimize(const Module &M, ModuleSchedule *Schedule = nullptr);

  Runner &runner() { return Run; }
  ActorCritic &agent() { return Agent; }
  PpoTrainer &trainer() { return Trainer; }
  const MlirRlOptions &options() const { return Options; }

  /// The evaluator the trainer measures through: the shared striped
  /// CachingEvaluator when memoization is active, else the Runner.
  Evaluator &evaluator() { return Memo ? static_cast<Evaluator &>(*Memo)
                                       : static_cast<Evaluator &>(Run); }
  /// The shared memo (nullptr when memoization is off or noise is on).
  CachingEvaluator *memo() { return Memo.get(); }

private:
  MlirRlOptions Options;
  Runner Run;
  /// One striped memo shared across all collector threads; constructed
  /// before the trainer, which holds a reference into it.
  std::unique_ptr<CachingEvaluator> Memo;
  ActorCritic Agent;
  PpoTrainer Trainer;
};

} // namespace mlirrl

#endif // MLIRRL_RL_MLIRRL_H
