//===- MlirRl.h - Top-level system facade ------------------------*- C++-*-===//
///
/// \file
/// MLIR RL as a downstream user consumes it: construct with a
/// configuration, train on a dataset of modules, then optimize modules
/// with the learned policy. This is the public entry point the examples
/// and the benchmark harness use.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_RL_MLIRRL_H
#define MLIRRL_RL_MLIRRL_H

#include "perf/Runner.h"
#include "rl/Ppo.h"

#include <functional>
#include <memory>

namespace mlirrl {

/// Full system configuration.
struct MlirRlOptions {
  EnvConfig Env;
  NetConfig Net;
  PpoConfig Ppo;
  MachineModel Machine = MachineModel::xeonE5_2680v4();
  RunnerOptions Runner;
  /// Training iterations (each collects Ppo.SamplesPerIteration
  /// episodes and performs Ppo.UpdateEpochs update passes).
  unsigned Iterations = 100;
  uint64_t Seed = 1234;

  /// A small, fast preset for laptop-scale experiments (same
  /// architecture, narrower nets, fewer samples per iteration).
  static MlirRlOptions laptop();
};

/// The trained system.
class MlirRl {
public:
  explicit MlirRl(MlirRlOptions Options);

  /// Trains on \p Dataset; \p PerIteration (optional) observes progress.
  std::vector<PpoIterationStats>
  train(const std::vector<Module> &Dataset,
        const std::function<void(unsigned, const PpoIterationStats &)>
            &PerIteration = nullptr);

  /// Optimizes one module with the greedy policy; returns the speedup
  /// over the unoptimized baseline.
  double optimize(const Module &M, ModuleSchedule *Schedule = nullptr);

  Runner &runner() { return Run; }
  ActorCritic &agent() { return Agent; }
  PpoTrainer &trainer() { return Trainer; }
  const MlirRlOptions &options() const { return Options; }

private:
  MlirRlOptions Options;
  Runner Run;
  ActorCritic Agent;
  PpoTrainer Trainer;
};

} // namespace mlirrl

#endif // MLIRRL_RL_MLIRRL_H
