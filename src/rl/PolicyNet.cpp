//===- PolicyNet.cpp ------------------------------------------------------===//

#include "rl/PolicyNet.h"

#include "support/Error.h"

#include <cassert>

using namespace mlirrl;
using namespace mlirrl::nn;

PolicyNet::PolicyNet(const EnvConfig &Env, unsigned FeatureSize,
                     NetConfig Net, Rng &Rng)
    : Env(Env), Space(Env), Lstm(FeatureSize, Net.LstmHidden, Rng),
      Backbone(Net.LstmHidden, Net.BackboneHidden, Net.BackboneDepth, Rng),
      TransformHead(Net.BackboneHidden, NumTransformKinds, Rng),
      InterchangeHead(Net.BackboneHidden, Space.interchangeHeadSize(), Rng),
      FlatHead(Net.BackboneHidden,
               static_cast<unsigned>(buildFlatActionList(Env).size()), Rng),
      FlatMode(Env.ActionSpace == ActionSpaceMode::Flat) {
  for (unsigned I = 0; I < 3; ++I)
    TileHeads.emplace_back(Net.BackboneHidden,
                           Env.MaxLoops * Env.NumTileSizes, Rng);
}

/// Compresses one observation field across the batch (feature rows are
/// ~97% zeros; every LSTM gate then touches only the nonzeros).
std::shared_ptr<const SparseRows>
PolicyNet::compressRows(const std::vector<const Observation *> &Batch,
                        const std::vector<double> Observation::*Field) {
  std::vector<const std::vector<double> *> Sources;
  Sources.reserve(Batch.size());
  for (const Observation *Obs : Batch)
    Sources.push_back(&(Obs->*Field));
  return std::make_shared<const SparseRows>(SparseRows::fromRows(Sources));
}

Tensor PolicyNet::embed(const std::vector<const Observation *> &Batch) const {
  // Producer first, consumer second; the final hidden state is the
  // producer-consumer embedding (Sec. V-A1). The whole batch advances
  // through the LSTM in lockstep, one GEMM per gate per step.
  return Lstm.runSequenceSparse({compressRows(Batch, &Observation::Producer),
                                 compressRows(Batch, &Observation::Consumer)});
}

PolicyNet::Heads
PolicyNet::forward(const std::vector<const Observation *> &Batch) const {
  assert(!Batch.empty() && "empty observation batch");
  Tensor Features = Backbone.forward(embed(Batch));
  Heads H;
  if (FlatMode) {
    H.FlatLogits = FlatHead.forward(Features);
    return H;
  }
  H.TransformLogits = TransformHead.forward(Features);
  for (const Linear &Head : TileHeads)
    H.TileLogits.push_back(Head.forward(Features));
  H.InterchangeLogits = InterchangeHead.forward(Features);
  return H;
}

unsigned PolicyNet::tileHeadIndex(TransformKind Kind) {
  switch (Kind) {
  case TransformKind::Tiling:
    return 0;
  case TransformKind::TiledParallelization:
    return 1;
  case TransformKind::TiledFusion:
    return 2;
  default:
    MLIRRL_UNREACHABLE("not a tiled transformation");
  }
}

Tensor PolicyNet::tileRow(const Heads &H, unsigned HeadIdx,
                          unsigned Level) const {
  return sliceCols(H.TileLogits.at(HeadIdx), Level * Env.NumTileSizes,
                   Env.NumTileSizes);
}

std::vector<Tensor> PolicyNet::parameters() const {
  std::vector<Tensor> Params = Lstm.parameters();
  auto Append = [&Params](const std::vector<Tensor> &More) {
    Params.insert(Params.end(), More.begin(), More.end());
  };
  Append(Backbone.parameters());
  if (FlatMode) {
    Append(FlatHead.parameters());
    return Params;
  }
  Append(TransformHead.parameters());
  for (const Linear &Head : TileHeads)
    Append(Head.parameters());
  Append(InterchangeHead.parameters());
  return Params;
}

ValueNet::ValueNet(const EnvConfig &Env, unsigned FeatureSize, NetConfig Net,
                   Rng &Rng)
    : Lstm(FeatureSize, Net.LstmHidden, Rng),
      Backbone(Net.LstmHidden, Net.BackboneHidden, Net.BackboneDepth, Rng),
      Head(Net.BackboneHidden, 1, Rng) {
  (void)Env;
}

Tensor ValueNet::forward(const std::vector<const Observation *> &Batch) const {
  assert(!Batch.empty() && "empty observation batch");
  Tensor Embedding = Lstm.runSequenceSparse(
      {PolicyNet::compressRows(Batch, &Observation::Producer),
       PolicyNet::compressRows(Batch, &Observation::Consumer)});
  return Head.forward(Backbone.forward(Embedding));
}

std::vector<Tensor> ValueNet::parameters() const {
  std::vector<Tensor> Params = Lstm.parameters();
  std::vector<Tensor> B = Backbone.parameters();
  Params.insert(Params.end(), B.begin(), B.end());
  std::vector<Tensor> H = Head.parameters();
  Params.insert(Params.end(), H.begin(), H.end());
  return Params;
}
