//===- RolloutEngine.h - The one episode-rollout implementation --*- C++-*-===//
///
/// \file
/// "Rollout a policy over a module", extracted out of PpoTrainer into a
/// standalone engine so every episode loop in the system is the same
/// code: PPO collection (sampling), greedy optimize()/serving
/// (argmax), and the random-search baseline all drive lockstep VecEnv
/// groups through one loop, differing only in where the actions come
/// from. Before this split each caller hand-rolled a near-duplicate
/// loop, and that drift is where past bugs hid (memo accounting, stale
/// inference caches, the random baseline sampling tile levels past the
/// op's loop count).
///
/// The split mirrors the exec-graph idiom of separating "what to run"
/// from "who runs it": the engine owns the mechanics (module copies,
/// lockstep stepping, observation snapshots, episode bookkeeping), the
/// ActionSource owns the decision. The engine is parameterized by the
/// Evaluator rewards are measured through -- a shared lock-striped
/// CachingEvaluator makes concurrent rollouts reuse each other's
/// prices -- and inherits the agent's InferenceDtype (F32 routes
/// greedy logits through the packed float policy; sampling and the
/// critic always stay on the bitwise-deterministic double path).
///
/// Determinism contract (inherited from the loops it replaced and
/// test-gated by RolloutEquivalenceTest): episodes only consume their
/// own RNG stream, so a width-B group is bitwise-identical to B
/// sequential width-1 rollouts, and the engine's episodes are
/// bitwise-identical to the legacy PpoTrainer/randomSearch loops.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_RL_ROLLOUTENGINE_H
#define MLIRRL_RL_ROLLOUTENGINE_H

#include "rl/Agent.h"
#include "rl/RolloutBuffer.h"

#include <functional>
#include <vector>

namespace mlirrl {

class RolloutEngine {
public:
  /// One finished episode.
  struct Episode {
    /// Sum of step rewards.
    double Reward = 0.0;
    /// Speedup of the final schedule over the unoptimized baseline.
    double Speedup = 1.0;
    /// Simulated measurement cost of the episode's rewards.
    double MeasurementSeconds = 0.0;
    /// Loop nests materialized by the episode's environment.
    uint64_t NestMaterializations = 0;
    /// The final schedule (filled when Options::RecordSchedule).
    ModuleSchedule Schedule;
    /// Per-step records for PPO (filled when Options::RecordSteps).
    std::vector<RolloutStep> Steps;
  };

  struct Options {
    /// Store a RolloutStep per step (PPO collection needs them; greedy
    /// serving does not, and skipping them skips the observation
    /// copies).
    bool RecordSteps = false;
    /// Copy the final schedule out of each environment.
    bool RecordSchedule = false;
    /// Defensive cap on lockstep steps per group (0 = unlimited). The
    /// environment always terminates on its own; the cap exists so a
    /// server rolling untrusted modules has a hard bound, and hitting
    /// it is counted under robustness.rollout_step_cap.
    unsigned MaxGroupSteps = 0;
  };

  /// Chooses one action per live environment. Called once per lockstep
  /// step with the live observations and their private RNG streams
  /// (aligned). Sources that draw no randomness (greedy) ignore the
  /// streams; sources without policy state (random search) fill only
  /// the Action field of each Sampled.
  using ActionSource = std::function<std::vector<ActorCritic::Sampled>(
      const std::vector<const Observation *> &, const std::vector<Rng *> &)>;

  /// An engine that rolls the (read-only) \p Agent's policy. Both the
  /// agent and \p Eval must be thread-safe and outlive the engine;
  /// every episode of every group measures through \p Eval, so passing
  /// the shared striped CachingEvaluator makes prices cross episode,
  /// batch and thread boundaries.
  RolloutEngine(const ActorCritic &Agent, Evaluator &Eval)
      : Agent(&Agent), Config(Agent.getEnvConfig()), Eval(Eval) {}

  /// An agent-less engine (random search, tests): only the generic
  /// rolloutGroup entry point is usable.
  RolloutEngine(const EnvConfig &Config, Evaluator &Eval)
      : Agent(nullptr), Config(Config), Eval(Eval) {}

  /// The core loop: one lockstep VecEnv group with one episode per
  /// entry of \p Samples, actions drawn from \p Actions, Rngs[i] being
  /// episode i's private stream (may alias when the source is
  /// RNG-free). Thread-safe: concurrent calls share only the agent and
  /// the evaluator.
  std::vector<Episode> rolloutGroup(const std::vector<const Module *> &Samples,
                                    const std::vector<Rng *> &Rngs,
                                    const ActionSource &Actions,
                                    const Options &Opts) const;

  /// Policy-sampling group (PPO collection): episode i samples through
  /// the agent's batched path on stream Rngs[i]. Steps are recorded.
  std::vector<Episode>
  sampleGroup(const std::vector<const Module *> &Samples,
              const std::vector<Rng *> &Rngs, const Options &Opts) const;

  /// Greedy (argmax) group: no RNG draws, no critic evaluation; the
  /// agent's InferenceDtype selects the f64 or packed-f32 logits path.
  /// This is the serving batch: B concurrent requests advance as one
  /// policy GEMM per lockstep step.
  std::vector<Episode> greedyGroup(const std::vector<const Module *> &Samples,
                                   const Options &Opts) const;

  /// One greedy episode (the optimize() path).
  Episode greedy(const Module &M, const Options &Opts) const;

  const EnvConfig &envConfig() const { return Config; }
  /// The evaluator every rollout measures through -- exposed so the
  /// baselines and the server can price through the same (memoized)
  /// seam the engine uses.
  Evaluator &evaluator() const { return Eval; }

private:
  const ActorCritic *Agent;
  EnvConfig Config;
  Evaluator &Eval;
};

} // namespace mlirrl

#endif // MLIRRL_RL_ROLLOUTENGINE_H
