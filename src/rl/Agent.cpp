//===- Agent.cpp ----------------------------------------------------------===//

#include "rl/Agent.h"

#include "nn/Distributions.h"
#include "support/Error.h"

#include <algorithm>

using namespace mlirrl;
using namespace mlirrl::nn;

ActorCritic::ActorCritic(const EnvConfig &Env, unsigned FeatureSize,
                         NetConfig Net, uint64_t Seed)
    : Env(Env), Policy([&] {
        Rng InitRng(Seed);
        return PolicyNet(Env, FeatureSize, Net, InitRng);
      }()),
      Value([&] {
        Rng InitRng(Seed ^ 0x9e3779b97f4a7c15ull);
        return ValueNet(Env, FeatureSize, Net, InitRng);
      }()) {}

ActorCritic::Sampled ActorCritic::act(const Observation &Obs, Rng &Rng,
                                      bool Greedy) const {
  AgentAction Action;
  Action.FlatChoice = static_cast<unsigned>(-1); // mark unsampled
  Evaluation Eval = evaluateWithAction(Obs, Action, &Rng, Greedy);
  Sampled S;
  S.Action = Action;
  S.LogProb = Eval.LogProb.item();
  // Greedy evaluation skips the critic entirely (see below); rollouts
  // store its baseline estimate.
  S.Value = Eval.Value.valid() ? Eval.Value.item() : 0.0;
  return S;
}

ActorCritic::Evaluation
ActorCritic::evaluate(const Observation &Obs,
                      const AgentAction &Action) const {
  AgentAction Copy = Action;
  return evaluateWithAction(Obs, Copy, /*SampleRng=*/nullptr,
                            /*Greedy=*/false);
}

ActorCritic::Evaluation
ActorCritic::evaluateWithAction(const Observation &Obs, AgentAction &Action,
                                Rng *SampleRng, bool Greedy) const {
  PolicyNet::Heads Heads = Policy.forward(Obs);
  const bool Sampling = SampleRng != nullptr;
  // Entropy only regularizes the PPO update; building its graph during
  // rollouts is wasted work. The critic is likewise dead weight in
  // greedy (deployment) inference, which only consumes the argmax
  // actions -- skipping it halves the networks evaluated per step.
  const bool NeedEntropy = !Sampling;
  const bool NeedValue = !(Sampling && Greedy);

  auto MaskTensor = [](const std::vector<double> &Mask) {
    return Tensor::fromData(1, Mask.size(), Mask);
  };
  auto ChooseFrom = [&](const MaskedCategorical &Dist,
                        unsigned Stored) -> unsigned {
    if (!Sampling)
      return Stored;
    return Greedy ? Dist.argmax() : Dist.sample(*SampleRng);
  };

  std::vector<Tensor> LogProbTerms;
  std::vector<Tensor> EntropyTerms;

  if (Env.ActionSpace == ActionSpaceMode::Flat) {
    MaskedCategorical Dist(Heads.FlatLogits, MaskTensor(Obs.FlatMask));
    unsigned Choice = ChooseFrom(Dist, Action.FlatChoice);
    Action.FlatChoice = Choice;
    // Kind is decoded by the environment; keep it for buffer clarity.
    LogProbTerms.push_back(Dist.logProb(Choice));
    if (NeedEntropy)
      EntropyTerms.push_back(Dist.entropy());
  } else if (Obs.InPointerSequence) {
    // Forced interchange continuation: only the pointer head acts.
    MaskedCategorical Dist(Heads.InterchangeLogits,
                           MaskTensor(Obs.InterchangeMask));
    unsigned Choice = ChooseFrom(Dist, Action.PointerChoice);
    Action.Kind = TransformKind::Interchange;
    Action.PointerChoice = Choice;
    LogProbTerms.push_back(Dist.logProb(Choice));
    if (NeedEntropy)
      EntropyTerms.push_back(Dist.entropy());
  } else {
    MaskedCategorical KindDist(Heads.TransformLogits,
                               MaskTensor(Obs.TransformMask));
    unsigned KindChoice =
        ChooseFrom(KindDist, static_cast<unsigned>(Action.Kind));
    Action.Kind = static_cast<TransformKind>(KindChoice);
    LogProbTerms.push_back(KindDist.logProb(KindChoice));
    if (NeedEntropy)
      EntropyTerms.push_back(KindDist.entropy());

    switch (Action.Kind) {
    case TransformKind::Tiling:
    case TransformKind::TiledParallelization:
    case TransformKind::TiledFusion: {
      unsigned HeadIdx = PolicyNet::tileHeadIndex(Action.Kind);
      if (Sampling)
        Action.TileSizeIdx.assign(Env.MaxLoops, 0);
      unsigned Levels = std::min(Obs.NumLoops, Env.MaxLoops);
      for (unsigned L = 0; L < Levels; ++L) {
        MaskedCategorical Dist(Policy.tileRow(Heads, HeadIdx, L));
        unsigned Stored =
            L < Action.TileSizeIdx.size() ? Action.TileSizeIdx[L] : 0;
        unsigned Choice = ChooseFrom(Dist, Stored);
        if (Sampling)
          Action.TileSizeIdx[L] = Choice;
        LogProbTerms.push_back(Dist.logProb(Choice));
        if (NeedEntropy)
          EntropyTerms.push_back(Dist.entropy());
      }
      break;
    }
    case TransformKind::Interchange: {
      MaskedCategorical Dist(Heads.InterchangeLogits,
                             MaskTensor(Obs.InterchangeMask));
      if (Env.Interchange == InterchangeMode::LevelPointers) {
        unsigned Choice = ChooseFrom(Dist, Action.PointerChoice);
        Action.PointerChoice = Choice;
        LogProbTerms.push_back(Dist.logProb(Choice));
      } else {
        unsigned Choice = ChooseFrom(Dist, Action.EnumeratedChoice);
        Action.EnumeratedChoice = Choice;
        LogProbTerms.push_back(Dist.logProb(Choice));
      }
      if (NeedEntropy)
        EntropyTerms.push_back(Dist.entropy());
      break;
    }
    case TransformKind::Vectorization:
    case TransformKind::NoTransformation:
      break;
    }
  }

  Evaluation Eval;
  Tensor LogProb = LogProbTerms.front();
  for (size_t I = 1; I < LogProbTerms.size(); ++I)
    LogProb = add(LogProb, LogProbTerms[I]);
  Eval.LogProb = LogProb;

  if (NeedEntropy) {
    Tensor Entropy = EntropyTerms.front();
    for (size_t I = 1; I < EntropyTerms.size(); ++I)
      Entropy = add(Entropy, EntropyTerms[I]);
    Eval.Entropy = Entropy;
  }

  if (NeedValue)
    Eval.Value = Value.forward(Obs);
  return Eval;
}

std::vector<Tensor> ActorCritic::parameters() const {
  std::vector<Tensor> Params = Policy.parameters();
  std::vector<Tensor> V = Value.parameters();
  Params.insert(Params.end(), V.begin(), V.end());
  return Params;
}
