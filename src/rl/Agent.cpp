//===- Agent.cpp ----------------------------------------------------------===//

#include "rl/Agent.h"

#include "nn/Distributions.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <optional>

using namespace mlirrl;
using namespace mlirrl::nn;

namespace {

/// Packs one mask field of every observation into a [BxN] tensor.
Tensor packMaskRows(const std::vector<const Observation *> &Batch,
                    const std::vector<double> Observation::*Field) {
  unsigned B = static_cast<unsigned>(Batch.size());
  unsigned N = static_cast<unsigned>((Batch.front()->*Field).size());
  std::vector<double> Packed;
  Packed.reserve(static_cast<size_t>(B) * N);
  for (const Observation *Obs : Batch) {
    const std::vector<double> &Row = Obs->*Field;
    assert(Row.size() == N && "ragged mask batch");
    Packed.insert(Packed.end(), Row.begin(), Row.end());
  }
  return Tensor::fromData(B, N, std::move(Packed));
}

/// Masked greedy argmax over one float logits row: the first valid
/// index with the strictly greatest logit -- softmax is monotone, so
/// this is argmaxRow's masked-probability argmax (first-index ties
/// included) applied to float logits. \p Mask may be null for no mask.
unsigned argmaxMaskedF32(const float *Logits, unsigned N,
                         const std::vector<double> *Mask) {
  assert((!Mask || Mask->size() == N) && "mask width mismatch");
  unsigned Best = 0;
  float BestValue = 0.0f;
  bool Any = false;
  for (unsigned I = 0; I < N; ++I) {
    if (Mask && (*Mask)[I] == 0.0)
      continue;
    if (!Any || Logits[I] > BestValue) {
      Any = true;
      BestValue = Logits[I];
      Best = I;
    }
  }
  assert(Any && "argmax over a fully-masked row");
  return Best;
}

/// Masked log-softmax of one entry of a float logits row (max-shifted,
/// accumulated in double).
double logProbMaskedF32(const float *Logits, unsigned N,
                        const std::vector<double> *Mask, unsigned Index) {
  float Max = Logits[argmaxMaskedF32(Logits, N, Mask)];
  double Sum = 0.0;
  for (unsigned I = 0; I < N; ++I) {
    if (Mask && (*Mask)[I] == 0.0)
      continue;
    Sum += std::exp(static_cast<double>(Logits[I]) - Max);
  }
  return static_cast<double>(Logits[Index]) - Max - std::log(Sum);
}

/// Lazily constructed per-(head, level) batched tile distributions: a
/// distribution is only built when some row of the batch actually uses
/// that head and level.
class TileDistCache {
public:
  TileDistCache(const PolicyNet &Policy, const PolicyNet::Heads &Heads,
                unsigned MaxLoops)
      : Policy(Policy), Heads(Heads), Dists(3 * MaxLoops), MaxLoops(MaxLoops) {}

  BatchedMaskedCategorical &get(unsigned HeadIdx, unsigned Level) {
    std::optional<BatchedMaskedCategorical> &Slot =
        Dists[HeadIdx * MaxLoops + Level];
    if (!Slot)
      Slot.emplace(Policy.tileRow(Heads, HeadIdx, Level));
    return *Slot;
  }

private:
  const PolicyNet &Policy;
  const PolicyNet::Heads &Heads;
  std::vector<std::optional<BatchedMaskedCategorical>> Dists;
  unsigned MaxLoops;
};

} // namespace

ActorCritic::ActorCritic(const EnvConfig &Env, unsigned FeatureSize,
                         NetConfig Net, uint64_t Seed)
    : Env(Env), Policy([&] {
        Rng InitRng(Seed);
        return PolicyNet(Env, FeatureSize, Net, InitRng);
      }()),
      Value([&] {
        Rng InitRng(Seed ^ 0x9e3779b97f4a7c15ull);
        return ValueNet(Env, FeatureSize, Net, InitRng);
      }()) {}

ActorCritic::Sampled ActorCritic::act(const Observation &Obs, Rng &Rng,
                                      bool Greedy) const {
  // A batch of one: there is exactly one action-space traversal to keep
  // correct (actBatch / evaluateBatch), and the width-1 batch takes the
  // same kernel paths, so this is the batched path's own bitwise
  // contract applied to itself.
  return actBatch({&Obs}, {&Rng}, Greedy).front();
}

ActorCritic::Evaluation
ActorCritic::evaluate(const Observation &Obs,
                      const AgentAction &Action) const {
  BatchEvaluation Batch = evaluateBatch({&Obs}, {&Action});
  return Evaluation{Batch.LogProb, Batch.Entropy, Batch.Value};
}

std::vector<ActorCritic::Sampled>
ActorCritic::actBatch(const std::vector<const Observation *> &Batch,
                      const std::vector<Rng *> &Rngs, bool Greedy) const {
  assert(Batch.size() == Rngs.size() && "one RNG stream per observation");
  // Greedy inference consumes no RNG draws and no critic values, so the
  // packed float policy can stand in for the whole forward pass.
  if (Greedy && Inference == InferenceDtype::F32)
    return actBatchGreedyF32(Batch);
  unsigned B = static_cast<unsigned>(Batch.size());
  PolicyNet::Heads Heads = Policy.forward(Batch);
  std::vector<Sampled> Out(B);

  // Rollouts store the critic's baseline; greedy (deployment) inference
  // only consumes the argmax actions, exactly as in act().
  if (!Greedy) {
    Tensor Values = Value.forward(Batch);
    for (unsigned R = 0; R < B; ++R)
      Out[R].Value = Values.at(R, 0);
  }

  if (Env.ActionSpace == ActionSpaceMode::Flat) {
    BatchedMaskedCategorical Dist(Heads.FlatLogits,
                                  packMaskRows(Batch, &Observation::FlatMask));
    for (unsigned R = 0; R < B; ++R) {
      unsigned Choice =
          Greedy ? Dist.argmaxRow(R) : Dist.sampleRow(R, *Rngs[R]);
      Out[R].Action.FlatChoice = Choice;
      Out[R].LogProb = Dist.logProbValue(R, Choice);
    }
    return Out;
  }

  BatchedMaskedCategorical KindDist(
      Heads.TransformLogits, packMaskRows(Batch, &Observation::TransformMask));
  // The interchange head is only consulted for pointer continuations
  // and sampled Interchange actions; build its batch-wide softmax on
  // first use (like the tile heads) instead of on every step.
  std::optional<BatchedMaskedCategorical> InterDistSlot;
  auto InterDist = [&]() -> BatchedMaskedCategorical & {
    if (!InterDistSlot)
      InterDistSlot.emplace(
          Heads.InterchangeLogits,
          packMaskRows(Batch, &Observation::InterchangeMask));
    return *InterDistSlot;
  };
  TileDistCache TileDists(Policy, Heads, Env.MaxLoops);

  // Each row consumes only its own RNG stream, and draws in the same
  // order act() draws for that observation (kind, then the active
  // parameter head level by level), so the resulting action, log-prob
  // and value are bitwise those of the single-observation path.
  for (unsigned R = 0; R < B; ++R) {
    const Observation &Obs = *Batch[R];
    Rng &SampleRng = *Rngs[R];
    AgentAction &Action = Out[R].Action;
    Action.FlatChoice = static_cast<unsigned>(-1); // unsampled (as act())
    auto Choose = [&](const BatchedMaskedCategorical &Dist) {
      return Greedy ? Dist.argmaxRow(R) : Dist.sampleRow(R, SampleRng);
    };

    if (Obs.InPointerSequence) {
      unsigned Choice = Choose(InterDist());
      Action.Kind = TransformKind::Interchange;
      Action.PointerChoice = Choice;
      Out[R].LogProb = InterDist().logProbValue(R, Choice);
      continue;
    }

    unsigned KindChoice = Choose(KindDist);
    Action.Kind = static_cast<TransformKind>(KindChoice);
    double LogProb = KindDist.logProbValue(R, KindChoice);

    switch (Action.Kind) {
    case TransformKind::Tiling:
    case TransformKind::TiledParallelization:
    case TransformKind::TiledFusion: {
      unsigned HeadIdx = PolicyNet::tileHeadIndex(Action.Kind);
      Action.TileSizeIdx.assign(Env.MaxLoops, 0);
      unsigned Levels = std::min(Obs.NumLoops, Env.MaxLoops);
      for (unsigned L = 0; L < Levels; ++L) {
        BatchedMaskedCategorical &Dist = TileDists.get(HeadIdx, L);
        unsigned Choice = Choose(Dist);
        Action.TileSizeIdx[L] = Choice;
        LogProb += Dist.logProbValue(R, Choice);
      }
      break;
    }
    case TransformKind::Interchange: {
      unsigned Choice = Choose(InterDist());
      if (Env.Interchange == InterchangeMode::LevelPointers)
        Action.PointerChoice = Choice;
      else
        Action.EnumeratedChoice = Choice;
      LogProb += InterDist().logProbValue(R, Choice);
      break;
    }
    case TransformKind::Vectorization:
    case TransformKind::NoTransformation:
      break;
    }
    Out[R].LogProb = LogProb;
  }
  return Out;
}

void ActorCritic::setInferenceDtype(InferenceDtype Dtype) {
  Inference = Dtype;
  invalidateInferenceCache();
}

void ActorCritic::invalidateInferenceCache() {
  // Bump the version before dropping the snapshot: a packedPolicy()
  // call that is mid-rebuild under PackLock right now will re-read the
  // version after it finishes packing, see the bump, and repack --
  // without the stamp it would publish (and cache) the pack it built
  // from the pre-mutation parameters.
  ParamVersion.fetch_add(1, std::memory_order_release);
  std::lock_guard<std::mutex> Lock(PackLock);
  Packed.reset();
  PackedVersion = 0;
}

std::shared_ptr<const PolicyNetF32> ActorCritic::packedPolicy() const {
  std::lock_guard<std::mutex> Lock(PackLock);
  for (;;) {
    uint64_t Version = ParamVersion.load(std::memory_order_acquire);
    if (Packed && PackedVersion == Version)
      return Packed;
    Packed = std::make_shared<const PolicyNetF32>(Policy);
    PackedVersion = Version;
    // Loop to recheck: if an invalidation bumped the version while we
    // packed, the pack may predate the newest parameters -- rebuild.
  }
}

std::vector<ActorCritic::Sampled> ActorCritic::actBatchGreedyF32(
    const std::vector<const Observation *> &Batch) const {
  unsigned B = static_cast<unsigned>(Batch.size());
  std::shared_ptr<const PolicyNetF32> Net = packedPolicy();
  PolicyNetF32::Heads Heads = Net->forward(Batch);
  std::vector<Sampled> Out(B);

  if (Env.ActionSpace == ActionSpaceMode::Flat) {
    for (unsigned R = 0; R < B; ++R) {
      const float *Row = Heads.FlatLogits.row(R);
      unsigned N = Heads.FlatLogits.Cols;
      unsigned Choice = argmaxMaskedF32(Row, N, &Batch[R]->FlatMask);
      Out[R].Action.FlatChoice = Choice;
      Out[R].LogProb = logProbMaskedF32(Row, N, &Batch[R]->FlatMask, Choice);
    }
    return Out;
  }

  // The same action-space traversal as the f64 greedy branch: forced
  // pointer continuations, then kind, then the active parameter head
  // level by level.
  for (unsigned R = 0; R < B; ++R) {
    const Observation &Obs = *Batch[R];
    AgentAction &Action = Out[R].Action;
    Action.FlatChoice = static_cast<unsigned>(-1); // unsampled (as act())
    const float *InterRow = Heads.InterchangeLogits.row(R);
    unsigned InterN = Heads.InterchangeLogits.Cols;

    if (Obs.InPointerSequence) {
      unsigned Choice = argmaxMaskedF32(InterRow, InterN,
                                        &Obs.InterchangeMask);
      Action.Kind = TransformKind::Interchange;
      Action.PointerChoice = Choice;
      Out[R].LogProb =
          logProbMaskedF32(InterRow, InterN, &Obs.InterchangeMask, Choice);
      continue;
    }

    const float *KindRow = Heads.TransformLogits.row(R);
    unsigned KindN = Heads.TransformLogits.Cols;
    unsigned KindChoice = argmaxMaskedF32(KindRow, KindN, &Obs.TransformMask);
    Action.Kind = static_cast<TransformKind>(KindChoice);
    double LogProb =
        logProbMaskedF32(KindRow, KindN, &Obs.TransformMask, KindChoice);

    switch (Action.Kind) {
    case TransformKind::Tiling:
    case TransformKind::TiledParallelization:
    case TransformKind::TiledFusion: {
      unsigned HeadIdx = PolicyNet::tileHeadIndex(Action.Kind);
      Action.TileSizeIdx.assign(Env.MaxLoops, 0);
      unsigned Levels = std::min(Obs.NumLoops, Env.MaxLoops);
      for (unsigned L = 0; L < Levels; ++L) {
        const float *Row = Net->tileRow(Heads, HeadIdx, L, R);
        unsigned N = Net->tileRowWidth();
        unsigned Choice = argmaxMaskedF32(Row, N, nullptr);
        Action.TileSizeIdx[L] = Choice;
        LogProb += logProbMaskedF32(Row, N, nullptr, Choice);
      }
      break;
    }
    case TransformKind::Interchange: {
      unsigned Choice = argmaxMaskedF32(InterRow, InterN,
                                        &Obs.InterchangeMask);
      if (Env.Interchange == InterchangeMode::LevelPointers)
        Action.PointerChoice = Choice;
      else
        Action.EnumeratedChoice = Choice;
      LogProb +=
          logProbMaskedF32(InterRow, InterN, &Obs.InterchangeMask, Choice);
      break;
    }
    case TransformKind::Vectorization:
    case TransformKind::NoTransformation:
      break;
    }
    Out[R].LogProb = LogProb;
  }
  return Out;
}

ActorCritic::BatchEvaluation
ActorCritic::evaluateBatch(const std::vector<const Observation *> &Obs,
                           const std::vector<const AgentAction *> &Actions) const {
  assert(!Obs.empty() && Obs.size() == Actions.size() &&
         "one action per observation");
  unsigned B = static_cast<unsigned>(Obs.size());
  PolicyNet::Heads Heads = Policy.forward(Obs);

  std::vector<Tensor> LogProbTerms; // each B x 1
  std::vector<Tensor> EntropyTerms; // each B x 1

  /// Entropy of a head only regularizes rows for which the head is
  /// active; an exact 0/1 row indicator zeroes the others (values and
  /// gradients both).
  auto MaskedEntropy = [B](const BatchedMaskedCategorical &Dist,
                           const std::vector<double> &Active) {
    return hadamard(Dist.entropyRows(),
                    Tensor::fromData(B, 1, Active));
  };

  if (Env.ActionSpace == ActionSpaceMode::Flat) {
    BatchedMaskedCategorical Dist(Heads.FlatLogits,
                                  packMaskRows(Obs, &Observation::FlatMask));
    std::vector<int> Cols(B);
    for (unsigned R = 0; R < B; ++R)
      Cols[R] = static_cast<int>(Actions[R]->FlatChoice);
    LogProbTerms.push_back(Dist.logProbRows(Cols));
    EntropyTerms.push_back(Dist.entropyRows());
  } else {
    // Transformation-selection head: every row except forced pointer
    // continuations.
    BatchedMaskedCategorical KindDist(
        Heads.TransformLogits, packMaskRows(Obs, &Observation::TransformMask));
    std::vector<int> KindCols(B);
    std::vector<double> KindActive(B);
    for (unsigned R = 0; R < B; ++R) {
      bool Active = !Obs[R]->InPointerSequence;
      KindActive[R] = Active ? 1.0 : 0.0;
      KindCols[R] = Active ? static_cast<int>(Actions[R]->Kind) : -1;
    }
    LogProbTerms.push_back(KindDist.logProbRows(KindCols));
    EntropyTerms.push_back(MaskedEntropy(KindDist, KindActive));

    // Tile heads, level by level; a (head, level) pair no row uses
    // costs nothing.
    TileDistCache TileDists(Policy, Heads, Env.MaxLoops);
    for (unsigned HeadIdx = 0; HeadIdx < 3; ++HeadIdx) {
      for (unsigned L = 0; L < Env.MaxLoops; ++L) {
        std::vector<int> Cols(B, -1);
        std::vector<double> Active(B, 0.0);
        bool Any = false;
        for (unsigned R = 0; R < B; ++R) {
          const AgentAction &A = *Actions[R];
          if (Obs[R]->InPointerSequence ||
              (A.Kind != TransformKind::Tiling &&
               A.Kind != TransformKind::TiledParallelization &&
               A.Kind != TransformKind::TiledFusion) ||
              PolicyNet::tileHeadIndex(A.Kind) != HeadIdx)
            continue;
          if (L >= std::min(Obs[R]->NumLoops, Env.MaxLoops))
            continue;
          Cols[R] = L < A.TileSizeIdx.size()
                        ? static_cast<int>(A.TileSizeIdx[L])
                        : 0;
          Active[R] = 1.0;
          Any = true;
        }
        if (!Any)
          continue;
        BatchedMaskedCategorical &Dist = TileDists.get(HeadIdx, L);
        LogProbTerms.push_back(Dist.logProbRows(Cols));
        EntropyTerms.push_back(MaskedEntropy(Dist, Active));
      }
    }

    // Interchange head: pointer continuations plus interchange actions.
    std::vector<int> InterCols(B, -1);
    std::vector<double> InterActive(B, 0.0);
    bool AnyInter = false;
    for (unsigned R = 0; R < B; ++R) {
      const AgentAction &A = *Actions[R];
      if (!Obs[R]->InPointerSequence &&
          A.Kind != TransformKind::Interchange)
        continue;
      bool Pointer = Obs[R]->InPointerSequence ||
                     Env.Interchange == InterchangeMode::LevelPointers;
      InterCols[R] = static_cast<int>(Pointer ? A.PointerChoice
                                              : A.EnumeratedChoice);
      InterActive[R] = 1.0;
      AnyInter = true;
    }
    if (AnyInter) {
      BatchedMaskedCategorical InterDist(
          Heads.InterchangeLogits,
          packMaskRows(Obs, &Observation::InterchangeMask));
      LogProbTerms.push_back(InterDist.logProbRows(InterCols));
      EntropyTerms.push_back(MaskedEntropy(InterDist, InterActive));
    }
  }

  BatchEvaluation Eval;
  Eval.LogProb = LogProbTerms.front();
  for (size_t I = 1; I < LogProbTerms.size(); ++I)
    Eval.LogProb = add(Eval.LogProb, LogProbTerms[I]);
  Eval.Entropy = EntropyTerms.front();
  for (size_t I = 1; I < EntropyTerms.size(); ++I)
    Eval.Entropy = add(Eval.Entropy, EntropyTerms[I]);
  Eval.Value = Value.forward(Obs);
  return Eval;
}

std::vector<Tensor> ActorCritic::parameters() const {
  std::vector<Tensor> Params = Policy.parameters();
  std::vector<Tensor> V = Value.parameters();
  Params.insert(Params.end(), V.begin(), V.end());
  return Params;
}
