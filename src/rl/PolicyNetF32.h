//===- PolicyNetF32.h - Packed float32 actor ---------------------*- C++-*-===//
///
/// \file
/// A packed float copy of the PolicyNet for the opt-in f32
/// greedy-inference path: same architecture, same sparse embedding
/// walk, float parameters and float GEMMs (nn/InferenceF32.h). Built
/// from a trained PolicyNet whenever the agent's parameter version
/// changes (ActorCritic caches one and drops it on update/restore);
/// produces logits only -- sampling, training and the critic stay on
/// the double path.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_RL_POLICYNETF32_H
#define MLIRRL_RL_POLICYNETF32_H

#include "nn/InferenceF32.h"
#include "rl/PolicyNet.h"

namespace mlirrl {

/// The float image of PolicyNet::forward.
class PolicyNetF32 {
public:
  /// Narrows every parameter of \p Net to float.
  explicit PolicyNetF32(const PolicyNet &Net);

  /// Head logits for a batch, one row per observation; mirrors
  /// PolicyNet::Heads with plain float matrices.
  struct Heads {
    nn::MatF32 TransformLogits;            // B x 6
    std::vector<nn::MatF32> TileLogits;    // 3 heads, each B x (N*M)
    nn::MatF32 InterchangeLogits;          // B x interchangeHeadSize
    nn::MatF32 FlatLogits;                 // flat mode only
  };

  Heads forward(const std::vector<const Observation *> &Batch) const;

  /// The per-level logits block of a tile head: row \p Row of head
  /// \p HeadIdx, columns [Level*NumTileSizes, +NumTileSizes).
  const float *tileRow(const Heads &H, unsigned HeadIdx, unsigned Level,
                       unsigned Row) const;
  unsigned tileRowWidth() const { return Env.NumTileSizes; }

private:
  EnvConfig Env;
  bool FlatMode;
  nn::LstmCellF32 Lstm;
  nn::MlpF32 Backbone;
  nn::LinearF32 TransformHead;
  std::vector<nn::LinearF32> TileHeads;
  nn::LinearF32 InterchangeHead;
  nn::LinearF32 FlatHead;
};

} // namespace mlirrl

#endif // MLIRRL_RL_POLICYNETF32_H
