//===- Ppo.cpp ------------------------------------------------------------===//

#include "rl/Ppo.h"

#include "datasets/Dataset.h"
#include "nn/Gemm.h"
#include "nn/Ops.h"
#include "support/Stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace mlirrl;
using namespace mlirrl::nn;

PpoTrainer::PpoTrainer(ActorCritic &Agent, Evaluator &Eval, PpoConfig Config)
    : Agent(Agent), Eval(Eval), Engine(Agent, Eval), Config(Config),
      Optimizer(Agent.parameters(), Config.LearningRate),
      SampleRng(Config.Seed) {}

std::vector<RolloutEngine::Episode>
PpoTrainer::collectGroup(const std::vector<const Module *> &Samples,
                         const std::vector<uint64_t> &StreamKeys) const {
  // Derive each episode's private stream from its global sample index;
  // the engine's loop guarantees an episode only ever consumes its own
  // stream, which is what makes the result independent of batch width
  // and collection thread count.
  std::vector<Rng> Rngs;
  Rngs.reserve(StreamKeys.size());
  for (uint64_t Key : StreamKeys)
    Rngs.emplace_back(Rng::deriveSeed(Config.Seed, Key));
  std::vector<Rng *> RngPtrs(Rngs.size());
  for (size_t I = 0; I < Rngs.size(); ++I)
    RngPtrs[I] = &Rngs[I];

  RolloutEngine::Options Opts;
  Opts.RecordSteps = true;
  return Engine.sampleGroup(Samples, RngPtrs, Opts);
}

ThreadPool *PpoTrainer::collectionPool() {
  if (Config.CollectThreads == 1)
    return nullptr;
  if (!Pool)
    Pool = std::make_unique<ThreadPool>(Config.CollectThreads);
  return Pool.get();
}

ThreadPool *PpoTrainer::updatePool() {
  if (Config.UpdateThreads == 1)
    return nullptr;
  if (!GemmPool)
    GemmPool = std::make_unique<ThreadPool>(Config.UpdateThreads);
  return GemmPool.get();
}

PpoIterationStats
PpoTrainer::trainIteration(const std::vector<Module> &Dataset) {
  unsigned N = Config.SamplesPerIteration;
  std::vector<const Module *> Samples(N);
  for (unsigned I = 0; I < N; ++I) {
    Samples[I] = &Dataset[DatasetCursor % Dataset.size()];
    ++DatasetCursor;
  }
  return runIteration(Samples);
}

PpoIterationStats PpoTrainer::trainIteration(ShardedDataset &Stream) {
  // next() invalidates earlier references on shard switches, so the
  // iteration's draw is copied out of the stream first.
  unsigned N = Config.SamplesPerIteration;
  std::vector<Module> Drawn;
  Drawn.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Drawn.push_back(Stream.next());
  std::vector<const Module *> Samples(N);
  for (unsigned I = 0; I < N; ++I)
    Samples[I] = &Drawn[I];
  return runIteration(Samples);
}

PpoIterationStats
PpoTrainer::runIteration(const std::vector<const Module *> &Samples) {
  Buffer.clear();
  PpoIterationStats Stats;

  // Draw the RNG stream key of each episode up front; groups are then
  // embarrassingly parallel and the result is independent of both the
  // batch width and the thread count (streams are keyed by the global
  // sample index, merged back in sample order).
  unsigned N = static_cast<unsigned>(Samples.size());
  std::vector<uint64_t> StreamKeys(N);
  for (unsigned I = 0; I < N; ++I)
    StreamKeys[I] = EpisodeCounter++;

  unsigned Width = std::max(1u, Config.BatchWidth);
  unsigned Groups = (N + Width - 1) / Width;
  std::vector<std::vector<RolloutEngine::Episode>> GroupResults(Groups);
  auto RunGroup = [&](size_t G) {
    unsigned Begin = static_cast<unsigned>(G) * Width;
    unsigned End = std::min(N, Begin + Width);
    GroupResults[G] = collectGroup(
        {Samples.begin() + Begin, Samples.begin() + End},
        {StreamKeys.begin() + Begin, StreamKeys.begin() + End});
  };
  if (ThreadPool *P = collectionPool())
    P->parallelFor(Groups, RunGroup);
  else
    for (unsigned G = 0; G < Groups; ++G)
      RunGroup(G);

  std::vector<double> Speedups;
  std::vector<double> Rewards;
  for (std::vector<RolloutEngine::Episode> &Group : GroupResults) {
    for (RolloutEngine::Episode &R : Group) {
      Rewards.push_back(R.Reward);
      Speedups.push_back(std::max(R.Speedup, 1e-9));
      Stats.MeasurementSeconds += R.MeasurementSeconds;
      Stats.NestMaterializations += R.NestMaterializations;
      for (RolloutStep &Step : R.Steps)
        Buffer.add(std::move(Step));
    }
  }
  Stats.MeanEpisodeReward = mean(Rewards);
  Stats.MeanSpeedup = geomean(Speedups);
  Stats.StepsCollected = static_cast<unsigned>(Buffer.size());

  Buffer.computeAdvantages(Config.Gamma, Config.Lambda);
  Buffer.normalizeAdvantages();
  update(Stats);
  ++IterationsDone;
  return Stats;
}

namespace {

/// Installs the update pool into the GEMM kernels for the current
/// scope; the kernels stay serial when \p Pool is null.
struct GemmPoolScope {
  explicit GemmPoolScope(ThreadPool *Pool) { setGemmPool(Pool); }
  ~GemmPoolScope() { setGemmPool(nullptr); }
};

} // namespace

void PpoTrainer::update(PpoIterationStats &Stats) {
  GemmPoolScope PoolScope(updatePool());

  std::vector<size_t> Indices(Buffer.size());
  std::iota(Indices.begin(), Indices.end(), 0u);

  double PolicyLossAcc = 0.0, ValueLossAcc = 0.0, EntropyAcc = 0.0;
  unsigned MinibatchCount = 0;

  for (unsigned Epoch = 0; Epoch < Config.UpdateEpochs; ++Epoch) {
    SampleRng.shuffle(Indices);
    for (size_t Start = 0; Start < Indices.size();
         Start += Config.MinibatchSize) {
      size_t End = std::min(Indices.size(),
                            Start + static_cast<size_t>(Config.MinibatchSize));
      unsigned B = static_cast<unsigned>(End - Start);

      // Pack the minibatch; the whole forward then runs as one GEMM per
      // network layer instead of one GEMV per sample.
      std::vector<const Observation *> Obs(B);
      std::vector<const AgentAction *> Actions(B);
      std::vector<double> OldLogProb(B), Advantage(B), Return(B);
      for (unsigned I = 0; I < B; ++I) {
        const RolloutStep &Step = Buffer.steps()[Indices[Start + I]];
        Obs[I] = &Step.Obs;
        Actions[I] = &Step.Action;
        OldLogProb[I] = Step.OldLogProb;
        Advantage[I] = Step.Advantage;
        Return[I] = Step.Return;
      }
      ActorCritic::BatchEvaluation Eval = Agent.evaluateBatch(Obs, Actions);

      // Clipped surrogate objective over the batch rows.
      Tensor Ratio = expOp(
          sub(Eval.LogProb, Tensor::fromData(B, 1, std::move(OldLogProb))));
      Tensor Adv = Tensor::fromData(B, 1, std::move(Advantage));
      Tensor Unclipped = hadamard(Ratio, Adv);
      Tensor Clipped = hadamard(
          clamp(Ratio, 1.0 - Config.ClipRange, 1.0 + Config.ClipRange), Adv);
      Tensor PolicyLoss = scale(meanAll(minOp(Unclipped, Clipped)), -1.0);

      // Value regression to the GAE returns.
      Tensor Diff =
          sub(Eval.Value, Tensor::fromData(B, 1, std::move(Return)));
      Tensor ValueLoss = meanAll(hadamard(Diff, Diff));

      Tensor Entropy = meanAll(Eval.Entropy);
      Tensor Loss =
          add(add(PolicyLoss, scale(ValueLoss, Config.ValueCoef)),
              scale(Entropy, -Config.EntropyCoef));

      Optimizer.zeroGrad();
      Loss.backward();
      clipGradNorm(Agent.parameters(), Config.MaxGradNorm);
      Optimizer.step();

      PolicyLossAcc += PolicyLoss.item();
      ValueLossAcc += ValueLoss.item();
      EntropyAcc += Entropy.item();
      ++MinibatchCount;
    }
  }
  if (MinibatchCount > 0) {
    Stats.PolicyLoss = PolicyLossAcc / MinibatchCount;
    Stats.ValueLoss = ValueLossAcc / MinibatchCount;
    Stats.Entropy = EntropyAcc / MinibatchCount;
  }
  // The optimizer stepped the parameters: any packed f32 copy of the
  // policy is stale.
  Agent.invalidateInferenceCache();
}

double PpoTrainer::evaluate(const Module &Sample, ModuleSchedule *Out) {
  // Greedy inference draws no RNG and evaluates no critic, so running
  // it as a width-1 engine group is bitwise-identical to the legacy
  // single-Environment loop (RolloutEquivalenceTest pins the pair).
  RolloutEngine::Options Opts;
  Opts.RecordSchedule = Out != nullptr;
  RolloutEngine::Episode E = Engine.greedy(Sample, Opts);
  if (Out)
    *Out = std::move(E.Schedule);
  return E.Speedup;
}
