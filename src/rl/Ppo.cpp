//===- Ppo.cpp ------------------------------------------------------------===//

#include "rl/Ppo.h"

#include "nn/Ops.h"
#include "support/Stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace mlirrl;
using namespace mlirrl::nn;

PpoTrainer::PpoTrainer(ActorCritic &Agent, Runner &Run, PpoConfig Config)
    : Agent(Agent), Run(Run), Config(Config),
      Optimizer(Agent.parameters(), Config.LearningRate),
      SampleRng(Config.Seed) {}

PpoTrainer::EpisodeResult
PpoTrainer::collectEpisode(const Module &Sample, Rng &EpisodeRng) const {
  Environment Env(Agent.getEnvConfig(), Run, Sample);
  EpisodeResult Result;
  while (!Env.isDone()) {
    Observation Obs = Env.observe();
    ActorCritic::Sampled S = Agent.act(Obs, EpisodeRng);
    Environment::StepOutcome Out = Env.step(S.Action);

    RolloutStep Step;
    Step.Obs = std::move(Obs);
    Step.Action = S.Action;
    Step.OldLogProb = S.LogProb;
    Step.Value = S.Value;
    Step.Reward = Out.Reward;
    Step.EpisodeEnd = Out.Done;
    Result.Steps.push_back(std::move(Step));

    Result.Reward += Out.Reward;
  }
  Result.Speedup = Env.currentSpeedup();
  Result.MeasurementSeconds = Env.getMeasurementSeconds();
  return Result;
}

ThreadPool *PpoTrainer::collectionPool() {
  if (Config.CollectThreads == 1)
    return nullptr;
  if (!Pool)
    Pool = std::make_unique<ThreadPool>(Config.CollectThreads);
  return Pool.get();
}

PpoIterationStats
PpoTrainer::trainIteration(const std::vector<Module> &Dataset) {
  Buffer.clear();
  PpoIterationStats Stats;

  // Draw this iteration's samples and the RNG stream key of each episode
  // up front; collection is then embarrassingly parallel and its result
  // is independent of the thread count (streams are keyed by the global
  // sample index, merged back in sample order).
  unsigned N = Config.SamplesPerIteration;
  std::vector<const Module *> Samples(N);
  std::vector<uint64_t> StreamKeys(N);
  for (unsigned I = 0; I < N; ++I) {
    Samples[I] = &Dataset[DatasetCursor % Dataset.size()];
    ++DatasetCursor;
    StreamKeys[I] = EpisodeCounter++;
  }

  std::vector<EpisodeResult> Results(N);
  auto RunOne = [&](size_t I) {
    Rng EpisodeRng(Rng::deriveSeed(Config.Seed, StreamKeys[I]));
    Results[I] = collectEpisode(*Samples[I], EpisodeRng);
  };
  if (ThreadPool *P = collectionPool())
    P->parallelFor(N, RunOne);
  else
    for (unsigned I = 0; I < N; ++I)
      RunOne(I);

  std::vector<double> Speedups;
  std::vector<double> Rewards;
  for (EpisodeResult &R : Results) {
    Rewards.push_back(R.Reward);
    Speedups.push_back(std::max(R.Speedup, 1e-9));
    Stats.MeasurementSeconds += R.MeasurementSeconds;
    for (RolloutStep &Step : R.Steps)
      Buffer.add(std::move(Step));
  }
  Stats.MeanEpisodeReward = mean(Rewards);
  Stats.MeanSpeedup = geomean(Speedups);
  Stats.StepsCollected = static_cast<unsigned>(Buffer.size());

  Buffer.computeAdvantages(Config.Gamma, Config.Lambda);
  Buffer.normalizeAdvantages();
  update(Stats);
  return Stats;
}

void PpoTrainer::update(PpoIterationStats &Stats) {
  std::vector<size_t> Indices(Buffer.size());
  std::iota(Indices.begin(), Indices.end(), 0u);

  double PolicyLossAcc = 0.0, ValueLossAcc = 0.0, EntropyAcc = 0.0;
  unsigned MinibatchCount = 0;

  for (unsigned Epoch = 0; Epoch < Config.UpdateEpochs; ++Epoch) {
    SampleRng.shuffle(Indices);
    for (size_t Start = 0; Start < Indices.size();
         Start += Config.MinibatchSize) {
      size_t End = std::min(Indices.size(),
                            Start + static_cast<size_t>(Config.MinibatchSize));
      std::vector<Tensor> PolicyTerms, ValueTerms, EntropyTerms;
      for (size_t I = Start; I < End; ++I) {
        const RolloutStep &Step = Buffer.steps()[Indices[I]];
        ActorCritic::Evaluation Eval =
            Agent.evaluate(Step.Obs, Step.Action);

        // Clipped surrogate objective.
        Tensor Ratio = expOp(
            sub(Eval.LogProb, Tensor::scalar(Step.OldLogProb)));
        Tensor Adv = Tensor::scalar(Step.Advantage);
        Tensor Unclipped = hadamard(Ratio, Adv);
        Tensor Clipped = hadamard(
            clamp(Ratio, 1.0 - Config.ClipRange, 1.0 + Config.ClipRange),
            Adv);
        PolicyTerms.push_back(scale(minOp(Unclipped, Clipped), -1.0));

        // Value regression to the GAE return.
        Tensor Diff = sub(Eval.Value, Tensor::scalar(Step.Return));
        ValueTerms.push_back(hadamard(Diff, Diff));

        EntropyTerms.push_back(Eval.Entropy);
      }
      Tensor PolicyLoss = meanOf(PolicyTerms);
      Tensor ValueLoss = meanOf(ValueTerms);
      Tensor Entropy = meanOf(EntropyTerms);
      Tensor Loss =
          add(add(PolicyLoss, scale(ValueLoss, Config.ValueCoef)),
              scale(Entropy, -Config.EntropyCoef));

      Optimizer.zeroGrad();
      Loss.backward();
      clipGradNorm(Agent.parameters(), Config.MaxGradNorm);
      Optimizer.step();

      PolicyLossAcc += PolicyLoss.item();
      ValueLossAcc += ValueLoss.item();
      EntropyAcc += Entropy.item();
      ++MinibatchCount;
    }
  }
  if (MinibatchCount > 0) {
    Stats.PolicyLoss = PolicyLossAcc / MinibatchCount;
    Stats.ValueLoss = ValueLossAcc / MinibatchCount;
    Stats.Entropy = EntropyAcc / MinibatchCount;
  }
}

double PpoTrainer::evaluate(const Module &Sample, ModuleSchedule *Out) {
  Environment Env(Agent.getEnvConfig(), Run, Sample);
  while (!Env.isDone()) {
    ActorCritic::Sampled S =
        Agent.act(Env.observe(), SampleRng, /*Greedy=*/true);
    Env.step(S.Action);
  }
  if (Out)
    *Out = Env.getSchedule();
  return Env.currentSpeedup();
}
