//===- Checkpoint.h - Trainer checkpoints with bitwise-exact resume -*-C++-*-=//
///
/// \file
/// Checkpointed long trainings: snapshotting and restoring the full
/// PpoTrainer state — network parameters, Adam moments and step count,
/// the sample RNG stream, episode/dataset cursors, the PPO
/// configuration and any in-flight rollout steps — through the
/// versioned, CRC-checked binary archives of support/Serialize.h. The
/// contract is bitwise-exact resume: for any k, batch width and thread
/// count, train(k); save; load; train(N-k) produces the same
/// parameters, moments, RNG states and iteration statistics as an
/// uninterrupted train(N) (CheckpointResumeTest).
///
/// Restores are all-or-nothing: every chunk is CRC- and shape-validated
/// before a single byte of trainer state changes, so a corrupt or
/// mismatched archive fails with a clean error and an untouched
/// trainer.
///
/// CheckpointManager adds production file handling on top: atomic
/// temp-file + rename writes (a crash never leaves a torn checkpoint
/// behind) and keep-last-K rotation for long trainings that checkpoint
/// every few iterations.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_RL_CHECKPOINT_H
#define MLIRRL_RL_CHECKPOINT_H

#include "rl/Ppo.h"
#include "support/Serialize.h"

#include <string>
#include <vector>

namespace mlirrl {

class ShardedDataset;

/// Version of the checkpoint archive content (bumped whenever a chunk
/// layout changes; readers reject other versions instead of
/// misinterpreting bytes).
constexpr uint32_t CheckpointFormatVersion = 1;

/// Component serializers, shared between the trainer state code and the
/// round-trip tests. Writers append to the archive's open chunk;
/// readers flag malformed payloads through the ChunkReader's sticky
/// error (and the *Into variants additionally shape-check).
namespace ckpt {

void writeTensor(serialize::ArchiveWriter &W, const nn::Tensor &T);
/// Reads a tensor written by writeTensor into \p T. Returns false
/// (with \p Error set, \p T untouched) on shape mismatch or a
/// malformed payload.
bool readTensorInto(serialize::ChunkReader &R, const nn::Tensor &T,
                    std::string &Error);
/// Reads a tensor written by writeTensor as a fresh constant tensor.
Expected<nn::Tensor> readTensor(serialize::ChunkReader &R);

void writeRng(serialize::ArchiveWriter &W, const Rng &R);
void readRng(serialize::ChunkReader &R, Rng &Out);

void writePpoConfig(serialize::ArchiveWriter &W, const PpoConfig &Config);
PpoConfig readPpoConfig(serialize::ChunkReader &R);

void writeRolloutStep(serialize::ArchiveWriter &W, const RolloutStep &Step);
RolloutStep readRolloutStep(serialize::ChunkReader &R);

} // namespace ckpt

/// Serializes \p Trainer (and, when \p Stream is given, its dataset
/// cursor) and writes the archive to \p Path atomically.
Expected<bool> saveCheckpoint(const PpoTrainer &Trainer,
                              const std::string &Path,
                              const ShardedDataset *Stream = nullptr);

/// Restores \p Trainer (and \p Stream's cursor, when given) from the
/// checkpoint at \p Path. Validates everything before mutating
/// anything: on failure both trainer and stream are untouched.
Expected<bool> loadCheckpoint(PpoTrainer &Trainer, const std::string &Path,
                              ShardedDataset *Stream = nullptr);

/// Rotating checkpoint files for long trainings: save() writes
/// <dir>/<prefix>-<iteration>.ckpt atomically and prunes all but the
/// newest KeepLast checkpoints; loadLatest() resumes from the newest.
class CheckpointManager {
public:
  struct Options {
    std::string Directory;
    std::string Prefix = "ckpt";
    /// Checkpoints retained after each save (older ones are deleted).
    unsigned KeepLast = 3;
  };

  explicit CheckpointManager(Options Opts) : Opts(std::move(Opts)) {}

  /// Saves \p Trainer under its current iterationsDone() index and
  /// rotates. Returns the written path.
  Expected<std::string> save(const PpoTrainer &Trainer,
                             const ShardedDataset *Stream = nullptr) const;

  /// Path of the newest checkpoint in the directory ("" when none).
  std::string latestPath() const;

  /// Loads the newest checkpoint into \p Trainer, falling back to the
  /// older retained ones if the newest fails to load (corrupt archive,
  /// shape mismatch). The value is false when the directory holds no
  /// checkpoint (nothing to resume); an error means every retained
  /// checkpoint failed.
  Expected<bool> loadLatest(PpoTrainer &Trainer,
                            ShardedDataset *Stream = nullptr) const;

  const Options &options() const { return Opts; }

private:
  /// (iteration index, path) of every checkpoint in the directory,
  /// sorted by index ascending.
  std::vector<std::pair<uint64_t, std::string>> listCheckpoints() const;

  Options Opts;
};

} // namespace mlirrl

#endif // MLIRRL_RL_CHECKPOINT_H
