//===- RolloutBuffer.cpp --------------------------------------------------===//

#include "rl/RolloutBuffer.h"

#include <cmath>

using namespace mlirrl;

void RolloutBuffer::computeAdvantages(double Gamma, double Lambda) {
  double NextAdvantage = 0.0;
  double NextValue = 0.0;
  for (size_t I = Steps.size(); I > 0; --I) {
    RolloutStep &S = Steps[I - 1];
    if (S.EpisodeEnd) {
      NextAdvantage = 0.0;
      NextValue = 0.0;
    }
    double Delta = S.Reward + Gamma * NextValue - S.Value;
    S.Advantage = Delta + Gamma * Lambda * NextAdvantage;
    S.Return = S.Advantage + S.Value;
    NextAdvantage = S.Advantage;
    NextValue = S.Value;
  }
}

void RolloutBuffer::normalizeAdvantages() {
  if (Steps.size() < 2)
    return;
  double Sum = 0.0;
  for (const RolloutStep &S : Steps)
    Sum += S.Advantage;
  double Mean = Sum / static_cast<double>(Steps.size());
  double Var = 0.0;
  for (const RolloutStep &S : Steps)
    Var += (S.Advantage - Mean) * (S.Advantage - Mean);
  double Std = std::sqrt(Var / static_cast<double>(Steps.size())) + 1e-8;
  for (RolloutStep &S : Steps)
    S.Advantage = (S.Advantage - Mean) / Std;
}
