//===- RolloutEngine.cpp --------------------------------------------------===//

#include "rl/RolloutEngine.h"

#include "env/VecEnv.h"
#include "support/Stats.h"

#include <cassert>

using namespace mlirrl;

std::vector<RolloutEngine::Episode>
RolloutEngine::rolloutGroup(const std::vector<const Module *> &Samples,
                            const std::vector<Rng *> &Rngs,
                            const ActionSource &Actions,
                            const Options &Opts) const {
  assert(Samples.size() == Rngs.size() && "one RNG stream per episode");
  unsigned B = static_cast<unsigned>(Samples.size());
  std::vector<Module> Copies;
  Copies.reserve(B);
  for (const Module *M : Samples)
    Copies.push_back(*M);
  VecEnv Vec(Config, Eval, std::move(Copies));

  std::vector<Episode> Results(B);
  unsigned GroupSteps = 0;
  while (!Vec.allDone()) {
    if (Opts.MaxGroupSteps && GroupSteps >= Opts.MaxGroupSteps) {
      // The environments terminate on their own; this cap is the
      // server's defense-in-depth bound, and reaching it means either
      // a hostile module slipped the import gate's caps or a config
      // with an absurdly small bound -- either way worth counting.
      recordRobustnessEvent(RobustnessEvent::RolloutStepCapHit);
      break;
    }
    ++GroupSteps;

    // The live set shrinks as episodes finish; keep the pre-step copy
    // to route outcomes back to their episodes.
    std::vector<unsigned> Live = Vec.liveIndices();
    std::vector<const Observation *> ObsPtrs = Vec.observeLive();
    // Stored observations are snapshotted before step() mutates them.
    std::vector<Observation> ObsCopies;
    if (Opts.RecordSteps) {
      ObsCopies.reserve(Live.size());
      for (const Observation *Obs : ObsPtrs)
        ObsCopies.push_back(*Obs);
    }

    std::vector<Rng *> RngPtrs(Live.size());
    for (unsigned K = 0; K < Live.size(); ++K)
      RngPtrs[K] = Rngs[Live[K]];

    std::vector<ActorCritic::Sampled> Sampled = Actions(ObsPtrs, RngPtrs);
    std::vector<AgentAction> Stepped(Live.size());
    for (unsigned K = 0; K < Live.size(); ++K)
      Stepped[K] = Sampled[K].Action;
    std::vector<VecEnv::StepOutcome> Outs = Vec.step(Stepped);

    for (unsigned K = 0; K < Live.size(); ++K) {
      Episode &E = Results[Live[K]];
      if (Opts.RecordSteps) {
        RolloutStep Step;
        Step.Obs = std::move(ObsCopies[K]);
        Step.Action = std::move(Sampled[K].Action);
        Step.OldLogProb = Sampled[K].LogProb;
        Step.Value = Sampled[K].Value;
        Step.Reward = Outs[K].Reward;
        Step.EpisodeEnd = Outs[K].Done;
        E.Steps.push_back(std::move(Step));
      }
      E.Reward += Outs[K].Reward;
    }
  }

  for (unsigned I = 0; I < B; ++I) {
    Episode &E = Results[I];
    E.Speedup = Vec.env(I).currentSpeedup();
    E.MeasurementSeconds = Vec.env(I).getMeasurementSeconds();
    E.NestMaterializations =
        Vec.env(I).getState().counters().NestMaterializations;
    if (Opts.RecordSchedule)
      E.Schedule = Vec.env(I).getSchedule();
  }
  return Results;
}

std::vector<RolloutEngine::Episode>
RolloutEngine::sampleGroup(const std::vector<const Module *> &Samples,
                           const std::vector<Rng *> &Rngs,
                           const Options &Opts) const {
  assert(Agent && "sampling rollouts need an agent");
  return rolloutGroup(
      Samples, Rngs,
      [this](const std::vector<const Observation *> &Obs,
             const std::vector<Rng *> &Streams) {
        return Agent->actBatch(Obs, Streams);
      },
      Opts);
}

std::vector<RolloutEngine::Episode>
RolloutEngine::greedyGroup(const std::vector<const Module *> &Samples,
                           const Options &Opts) const {
  assert(Agent && "greedy rollouts need an agent");
  // Greedy inference draws nothing; every episode shares one inert
  // stream so the loop's alignment invariant holds without allocating
  // per-episode generators.
  Rng Unused(0);
  std::vector<Rng *> Rngs(Samples.size(), &Unused);
  return rolloutGroup(
      Samples, Rngs,
      [this](const std::vector<const Observation *> &Obs,
             const std::vector<Rng *> &Streams) {
        return Agent->actBatch(Obs, Streams, /*Greedy=*/true);
      },
      Opts);
}

RolloutEngine::Episode RolloutEngine::greedy(const Module &M,
                                             const Options &Opts) const {
  return greedyGroup({&M}, Opts).front();
}
