//===- RolloutBuffer.h - Trajectory storage + GAE -----------------*- C++-*-===//
///
/// \file
/// Stores collected trajectories and computes advantages with
/// Generalized Advantage Estimation. The paper uses gamma = 1.0 (rewards
/// are delayed to the end of the trajectory) and lambda = 0.95
/// (Sec. VII-A5).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_RL_ROLLOUTBUFFER_H
#define MLIRRL_RL_ROLLOUTBUFFER_H

#include "env/Environment.h"

#include <vector>

namespace mlirrl {

/// One stored step.
struct RolloutStep {
  Observation Obs;
  AgentAction Action;
  double OldLogProb = 0.0;
  double Value = 0.0;
  double Reward = 0.0;
  /// True when this step ends its episode.
  bool EpisodeEnd = false;
  // Filled by computeAdvantages:
  double Advantage = 0.0;
  double Return = 0.0;
};

/// A growable rollout store.
class RolloutBuffer {
public:
  void add(RolloutStep Step) { Steps.push_back(std::move(Step)); }
  void clear() { Steps.clear(); }
  size_t size() const { return Steps.size(); }
  bool empty() const { return Steps.empty(); }

  std::vector<RolloutStep> &steps() { return Steps; }
  const std::vector<RolloutStep> &steps() const { return Steps; }

  /// GAE over the stored episodes (episodes are delimited by
  /// EpisodeEnd; the terminal bootstrap value is zero).
  void computeAdvantages(double Gamma, double Lambda);

  /// Normalizes advantages to zero mean / unit variance (standard PPO
  /// stabilization).
  void normalizeAdvantages();

private:
  std::vector<RolloutStep> Steps;
};

} // namespace mlirrl

#endif // MLIRRL_RL_ROLLOUTBUFFER_H
