//===- Checkpoint.cpp -----------------------------------------------------===//

#include "rl/Checkpoint.h"

#include "datasets/Dataset.h"
#include "support/Args.h"

#include <algorithm>
#include <cassert>
#include <filesystem>
#include <system_error>
#include <utility>

using namespace mlirrl;
using namespace mlirrl::serialize;

// Chunk tags of the version-1 checkpoint layout.
static constexpr uint32_t kConfigTag = fourCC('C', 'F', 'G', ' ');
static constexpr uint32_t kParamsTag = fourCC('P', 'R', 'M', ' ');
static constexpr uint32_t kAdamTag = fourCC('A', 'D', 'M', ' ');
static constexpr uint32_t kRngTag = fourCC('R', 'N', 'G', ' ');
static constexpr uint32_t kCountersTag = fourCC('C', 'T', 'R', ' ');
static constexpr uint32_t kBufferTag = fourCC('B', 'U', 'F', ' ');
static constexpr uint32_t kDatasetTag = fourCC('D', 'S', 'E', 'T');

//===----------------------------------------------------------------------===//
// Component serializers
//===----------------------------------------------------------------------===//

void ckpt::writeTensor(ArchiveWriter &W, const nn::Tensor &T) {
  W.writeU32(T.rows());
  W.writeU32(T.cols());
  W.writeDoubles(T.data().data(), T.data().size());
}

bool ckpt::readTensorInto(ChunkReader &R, const nn::Tensor &T,
                          std::string &Error) {
  unsigned Rows = R.readU32();
  unsigned Cols = R.readU32();
  std::vector<double> Data = R.readDoubles();
  if (!R.ok()) {
    Error = R.error();
    return false;
  }
  if (Rows != T.rows() || Cols != T.cols() || Data.size() != T.size()) {
    Error = "tensor shape mismatch: archive has " + std::to_string(Rows) +
            "x" + std::to_string(Cols) + ", destination is " +
            std::to_string(T.rows()) + "x" + std::to_string(T.cols());
    return false;
  }
  T.node()->Data.assign(Data.begin(), Data.end());
  return true;
}

Expected<nn::Tensor> ckpt::readTensor(ChunkReader &R) {
  unsigned Rows = R.readU32();
  unsigned Cols = R.readU32();
  std::vector<double> Data = R.readDoubles();
  if (!R.ok())
    return makeError<nn::Tensor>(R.error());
  if (Data.size() != static_cast<size_t>(Rows) * Cols)
    return makeError<nn::Tensor>("tensor payload holds " +
                                 std::to_string(Data.size()) +
                                 " values for a " + std::to_string(Rows) +
                                 "x" + std::to_string(Cols) + " shape");
  return nn::Tensor::fromData(Rows, Cols, std::move(Data));
}

void ckpt::writeRng(ArchiveWriter &W, const Rng &R) {
  Rng::Snapshot S = R.snapshot();
  for (uint64_t Word : S.Words)
    W.writeU64(Word);
  W.writeBool(S.HasSpareGaussian);
  W.writeDouble(S.SpareGaussian);
}

void ckpt::readRng(ChunkReader &R, Rng &Out) {
  Rng::Snapshot S;
  for (uint64_t &Word : S.Words)
    Word = R.readU64();
  S.HasSpareGaussian = R.readBool();
  S.SpareGaussian = R.readDouble();
  if (R.ok())
    Out.restore(S);
}

void ckpt::writePpoConfig(ArchiveWriter &W, const PpoConfig &Config) {
  W.writeDouble(Config.LearningRate);
  W.writeDouble(Config.ClipRange);
  W.writeDouble(Config.Gamma);
  W.writeDouble(Config.Lambda);
  W.writeDouble(Config.ValueCoef);
  W.writeDouble(Config.EntropyCoef);
  W.writeU32(Config.UpdateEpochs);
  W.writeU32(Config.MinibatchSize);
  W.writeU32(Config.SamplesPerIteration);
  W.writeDouble(Config.MaxGradNorm);
  W.writeU64(Config.Seed);
  W.writeU32(Config.BatchWidth);
  W.writeU32(Config.CollectThreads);
  W.writeU32(Config.UpdateThreads);
}

PpoConfig ckpt::readPpoConfig(ChunkReader &R) {
  PpoConfig Config;
  Config.LearningRate = R.readDouble();
  Config.ClipRange = R.readDouble();
  Config.Gamma = R.readDouble();
  Config.Lambda = R.readDouble();
  Config.ValueCoef = R.readDouble();
  Config.EntropyCoef = R.readDouble();
  Config.UpdateEpochs = R.readU32();
  Config.MinibatchSize = R.readU32();
  Config.SamplesPerIteration = R.readU32();
  Config.MaxGradNorm = R.readDouble();
  Config.Seed = R.readU64();
  Config.BatchWidth = R.readU32();
  Config.CollectThreads = R.readU32();
  Config.UpdateThreads = R.readU32();
  return Config;
}

static void writeObservation(ArchiveWriter &W, const Observation &Obs) {
  W.writeDoubles(Obs.Consumer);
  W.writeDoubles(Obs.Producer);
  W.writeDoubles(Obs.TransformMask);
  W.writeDoubles(Obs.InterchangeMask);
  W.writeDoubles(Obs.FlatMask);
  W.writeBool(Obs.InPointerSequence);
  W.writeU32(Obs.NumLoops);
}

static Observation readObservation(ChunkReader &R) {
  Observation Obs;
  Obs.Consumer = R.readDoubles();
  Obs.Producer = R.readDoubles();
  Obs.TransformMask = R.readDoubles();
  Obs.InterchangeMask = R.readDoubles();
  Obs.FlatMask = R.readDoubles();
  Obs.InPointerSequence = R.readBool();
  Obs.NumLoops = R.readU32();
  return Obs;
}

static void writeAction(ArchiveWriter &W, const AgentAction &Action) {
  W.writeU32(static_cast<uint32_t>(Action.Kind));
  W.writeU32s(Action.TileSizeIdx);
  W.writeU32(Action.EnumeratedChoice);
  W.writeU32(Action.PointerChoice);
  W.writeU32(Action.FlatChoice);
}

static AgentAction readAction(ChunkReader &R) {
  AgentAction Action;
  Action.Kind = static_cast<TransformKind>(R.readU32());
  Action.TileSizeIdx = R.readU32s();
  Action.EnumeratedChoice = R.readU32();
  Action.PointerChoice = R.readU32();
  Action.FlatChoice = R.readU32();
  return Action;
}

void ckpt::writeRolloutStep(ArchiveWriter &W, const RolloutStep &Step) {
  writeObservation(W, Step.Obs);
  writeAction(W, Step.Action);
  W.writeDouble(Step.OldLogProb);
  W.writeDouble(Step.Value);
  W.writeDouble(Step.Reward);
  W.writeBool(Step.EpisodeEnd);
  W.writeDouble(Step.Advantage);
  W.writeDouble(Step.Return);
}

RolloutStep ckpt::readRolloutStep(ChunkReader &R) {
  RolloutStep Step;
  Step.Obs = readObservation(R);
  Step.Action = readAction(R);
  Step.OldLogProb = R.readDouble();
  Step.Value = R.readDouble();
  Step.Reward = R.readDouble();
  Step.EpisodeEnd = R.readBool();
  Step.Advantage = R.readDouble();
  Step.Return = R.readDouble();
  return Step;
}

//===----------------------------------------------------------------------===//
// PpoTrainer state (declared in rl/Ppo.h)
//===----------------------------------------------------------------------===//

void PpoTrainer::saveState(ArchiveWriter &W) const {
  W.beginChunk(kConfigTag);
  ckpt::writePpoConfig(W, Config);
  W.endChunk();

  W.beginChunk(kParamsTag);
  std::vector<nn::Tensor> Params = Agent.parameters();
  W.writeU64(Params.size());
  for (const nn::Tensor &P : Params)
    ckpt::writeTensor(W, P);
  W.endChunk();

  W.beginChunk(kAdamTag);
  W.writeU32(Optimizer.stepCount());
  W.writeU64(Optimizer.firstMoments().size());
  for (const std::vector<double> &M : Optimizer.firstMoments())
    W.writeDoubles(M);
  for (const std::vector<double> &V : Optimizer.secondMoments())
    W.writeDoubles(V);
  W.endChunk();

  W.beginChunk(kRngTag);
  ckpt::writeRng(W, SampleRng);
  W.endChunk();

  W.beginChunk(kCountersTag);
  W.writeU64(DatasetCursor);
  W.writeU64(EpisodeCounter);
  W.writeU64(IterationsDone);
  W.endChunk();

  W.beginChunk(kBufferTag);
  W.writeU64(Buffer.size());
  for (const RolloutStep &Step : Buffer.steps())
    ckpt::writeRolloutStep(W, Step);
  W.endChunk();
}

Expected<bool> PpoTrainer::restoreState(const ArchiveReader &Reader) {
  // Stage and validate everything before the commit below mutates the
  // first byte of trainer state: a failure anywhere leaves the trainer
  // exactly as it was.
  Expected<ChunkReader> Cfg = Reader.chunk(kConfigTag);
  if (!Cfg)
    return makeError<bool>(Cfg.getError());
  PpoConfig NewConfig = ckpt::readPpoConfig(*Cfg);
  if (!Cfg->ok())
    return makeError<bool>("config chunk: " + Cfg->error());

  std::vector<nn::Tensor> Params = Agent.parameters();
  Expected<ChunkReader> Prm = Reader.chunk(kParamsTag);
  if (!Prm)
    return makeError<bool>(Prm.getError());
  uint64_t ParamCount = Prm->readU64();
  if (!Prm->ok() || ParamCount != Params.size())
    return makeError<bool>(
        "parameter chunk holds " + std::to_string(ParamCount) +
        " tensors, agent has " + std::to_string(Params.size()) +
        " (checkpoint from a different architecture?)");
  std::vector<std::vector<double>> NewData(Params.size());
  for (size_t I = 0; I < Params.size(); ++I) {
    unsigned Rows = Prm->readU32();
    unsigned Cols = Prm->readU32();
    NewData[I] = Prm->readDoubles();
    if (!Prm->ok())
      return makeError<bool>("parameter chunk: " + Prm->error());
    if (Rows != Params[I].rows() || Cols != Params[I].cols() ||
        NewData[I].size() != Params[I].size())
      return makeError<bool>(
          "parameter " + std::to_string(I) + " is " + std::to_string(Rows) +
          "x" + std::to_string(Cols) + " in the checkpoint but " +
          std::to_string(Params[I].rows()) + "x" +
          std::to_string(Params[I].cols()) +
          " in the agent (checkpoint from a different architecture?)");
  }

  Expected<ChunkReader> Adm = Reader.chunk(kAdamTag);
  if (!Adm)
    return makeError<bool>(Adm.getError());
  nn::Adam::State AdamState;
  AdamState.StepCount = Adm->readU32();
  uint64_t MomentCount = Adm->readU64();
  if (!Adm->ok() || MomentCount != Params.size())
    return makeError<bool>("Adam chunk holds moments for " +
                           std::to_string(MomentCount) + " parameters, " +
                           std::to_string(Params.size()) + " expected");
  AdamState.FirstMoment.resize(Params.size());
  AdamState.SecondMoment.resize(Params.size());
  for (std::vector<double> &M : AdamState.FirstMoment)
    M = Adm->readDoubles();
  for (std::vector<double> &V : AdamState.SecondMoment)
    V = Adm->readDoubles();
  if (!Adm->ok())
    return makeError<bool>("Adam chunk: " + Adm->error());
  for (size_t I = 0; I < Params.size(); ++I)
    if (AdamState.FirstMoment[I].size() != Params[I].size() ||
        AdamState.SecondMoment[I].size() != Params[I].size())
      return makeError<bool>("Adam moment " + std::to_string(I) +
                             " does not match its parameter's size");

  Expected<ChunkReader> RngChunk = Reader.chunk(kRngTag);
  if (!RngChunk)
    return makeError<bool>(RngChunk.getError());
  Rng NewRng(0);
  ckpt::readRng(*RngChunk, NewRng);
  if (!RngChunk->ok())
    return makeError<bool>("RNG chunk: " + RngChunk->error());

  Expected<ChunkReader> Ctr = Reader.chunk(kCountersTag);
  if (!Ctr)
    return makeError<bool>(Ctr.getError());
  uint64_t NewDatasetCursor = Ctr->readU64();
  uint64_t NewEpisodeCounter = Ctr->readU64();
  uint64_t NewIterationsDone = Ctr->readU64();
  if (!Ctr->ok())
    return makeError<bool>("counter chunk: " + Ctr->error());

  Expected<ChunkReader> Buf = Reader.chunk(kBufferTag);
  if (!Buf)
    return makeError<bool>(Buf.getError());
  uint64_t StepCount = Buf->readU64();
  std::vector<RolloutStep> NewSteps;
  for (uint64_t I = 0; I < StepCount && Buf->ok(); ++I)
    NewSteps.push_back(ckpt::readRolloutStep(*Buf));
  if (!Buf->ok() || NewSteps.size() != StepCount)
    return makeError<bool>("rollout-buffer chunk: " + Buf->error());

  // Commit. Nothing below can fail.
  Config = NewConfig;
  for (size_t I = 0; I < Params.size(); ++I)
    Params[I].node()->Data.assign(NewData[I].begin(), NewData[I].end());
  bool AdamOk = Optimizer.setState(std::move(AdamState));
  assert(AdamOk && "validated Adam state failed to apply");
  (void)AdamOk;
  Optimizer.setLearningRate(Config.LearningRate);
  Optimizer.zeroGrad();
  SampleRng = NewRng;
  DatasetCursor = NewDatasetCursor;
  EpisodeCounter = NewEpisodeCounter;
  IterationsDone = NewIterationsDone;
  Buffer.steps() = std::move(NewSteps);
  // Thread pools are sized by the (possibly changed) config; drop them
  // so the next iteration recreates them lazily.
  Pool.reset();
  GemmPool.reset();
  // The restore rewrote the parameters: any packed f32 copy of the
  // policy is stale.
  Agent.invalidateInferenceCache();
  return true;
}

//===----------------------------------------------------------------------===//
// File-level checkpoints
//===----------------------------------------------------------------------===//

Expected<bool> mlirrl::saveCheckpoint(const PpoTrainer &Trainer,
                                      const std::string &Path,
                                      const ShardedDataset *Stream) {
  ArchiveWriter W(CheckpointFormatVersion);
  Trainer.saveState(W);
  if (Stream) {
    W.beginChunk(kDatasetTag);
    W.writeU64(Stream->seed());
    W.writeU64(Stream->size());
    W.writeU64(Stream->cursor());
    W.endChunk();
  }
  return W.writeFile(Path);
}

Expected<bool> mlirrl::loadCheckpoint(PpoTrainer &Trainer,
                                      const std::string &Path,
                                      ShardedDataset *Stream) {
  Expected<ArchiveReader> Reader =
      ArchiveReader::fromFile(Path, CheckpointFormatVersion);
  if (!Reader)
    return makeError<bool>("checkpoint " + Path + ": " + Reader.getError());

  // Validate the stream chunk before restoreState mutates the trainer,
  // so a mismatched stream leaves both untouched.
  uint64_t StreamCursor = 0;
  if (Stream) {
    Expected<ChunkReader> Dset = Reader->chunk(kDatasetTag);
    if (!Dset)
      return makeError<bool>(
          "checkpoint " + Path +
          " records no dataset cursor (saved without a stream): " +
          Dset.getError());
    uint64_t Seed = Dset->readU64();
    uint64_t Size = Dset->readU64();
    StreamCursor = Dset->readU64();
    if (!Dset->ok())
      return makeError<bool>("dataset chunk: " + Dset->error());
    if (Seed != Stream->seed() || Size != Stream->size())
      return makeError<bool>(
          "checkpointed dataset stream (seed " + std::to_string(Seed) +
          ", " + std::to_string(Size) + " samples) does not match the "
          "stream being resumed (seed " + std::to_string(Stream->seed()) +
          ", " + std::to_string(Stream->size()) + " samples)");
  }

  Expected<bool> Restored = Trainer.restoreState(*Reader);
  if (!Restored)
    return Restored;
  if (Stream)
    Stream->seek(StreamCursor);
  return true;
}

//===----------------------------------------------------------------------===//
// CheckpointManager
//===----------------------------------------------------------------------===//

std::vector<std::pair<uint64_t, std::string>>
CheckpointManager::listCheckpoints() const {
  std::vector<std::pair<uint64_t, std::string>> Found;
  std::error_code Ec;
  std::filesystem::directory_iterator It(Opts.Directory, Ec);
  if (Ec)
    return Found;
  const std::string Head = Opts.Prefix + "-";
  const std::string Tail = ".ckpt";
  for (const auto &Entry : It) {
    std::string Name = Entry.path().filename().string();
    if (Name.size() <= Head.size() + Tail.size() ||
        Name.compare(0, Head.size(), Head) != 0 ||
        Name.compare(Name.size() - Tail.size(), Tail.size(), Tail) != 0)
      continue;
    std::string Digits =
        Name.substr(Head.size(), Name.size() - Head.size() - Tail.size());
    // Checked parse (rejects non-digits and uint64 overflow outright,
    // where the old stoull would have thrown on a 20-digit run): a
    // foreign file in the checkpoint dir is skipped, never a crash.
    Expected<uint64_t> Index = parseUnsignedInteger(Digits);
    if (!Index)
      continue;
    Found.emplace_back(*Index, Entry.path().string());
  }
  std::sort(Found.begin(), Found.end());
  return Found;
}

Expected<std::string>
CheckpointManager::save(const PpoTrainer &Trainer,
                        const ShardedDataset *Stream) const {
  std::error_code Ec;
  std::filesystem::create_directories(Opts.Directory, Ec);
  if (Ec)
    return makeError<std::string>("cannot create checkpoint directory " +
                                  Opts.Directory + ": " + Ec.message());
  std::string Num = std::to_string(Trainer.iterationsDone());
  if (Num.size() < 10)
    Num.insert(0, 10 - Num.size(), '0');
  std::string Path = Opts.Directory + "/" + Opts.Prefix + "-" + Num + ".ckpt";
  Expected<bool> Written = saveCheckpoint(Trainer, Path, Stream);
  if (!Written)
    return makeError<std::string>(Written.getError());

  // Rotate: keep the KeepLast newest by index, but never the file just
  // written — a directory holding stale higher-index checkpoints from
  // an earlier run must not swallow the fresh one.
  std::vector<std::pair<uint64_t, std::string>> All = listCheckpoints();
  if (Opts.KeepLast > 0 && All.size() > Opts.KeepLast)
    for (size_t I = 0; I + Opts.KeepLast < All.size(); ++I)
      if (All[I].second != Path)
        std::filesystem::remove(All[I].second, Ec);
  return Path;
}

std::string CheckpointManager::latestPath() const {
  std::vector<std::pair<uint64_t, std::string>> All = listCheckpoints();
  return All.empty() ? std::string() : All.back().second;
}

Expected<bool> CheckpointManager::loadLatest(PpoTrainer &Trainer,
                                             ShardedDataset *Stream) const {
  std::vector<std::pair<uint64_t, std::string>> All = listCheckpoints();
  if (All.empty())
    return false;
  // Newest first; a corrupt newest checkpoint (torn write, disk error)
  // falls back to the older ones keep-last-K retention exists for. A
  // failed load leaves the trainer untouched, so trying the next is
  // safe.
  Expected<bool> LastError = makeError<bool>("no checkpoint loaded");
  for (size_t I = All.size(); I > 0; --I) {
    Expected<bool> Loaded =
        loadCheckpoint(Trainer, All[I - 1].second, Stream);
    if (Loaded)
      return Loaded;
    LastError = std::move(Loaded);
  }
  return LastError;
}
