//===- Agent.h - Actor-critic agent ------------------------------*- C++-*-===//
///
/// \file
/// The actor-critic agent (Sec. V): sampling actions from the policy
/// heads under the environment's masks, and re-evaluating stored actions
/// during PPO updates (log-probability, entropy, value). The
/// multi-discrete log-probability of a step is the sum over its active
/// heads.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_RL_AGENT_H
#define MLIRRL_RL_AGENT_H

#include "rl/PolicyNetF32.h"

#include <atomic>
#include <memory>
#include <mutex>

namespace mlirrl {

/// Element type greedy policy inference runs in. Training, sampling
/// rollouts and the critic always run in F64 (the bitwise-deterministic
/// path); F32 routes greedy actBatch/act calls through a packed float
/// copy of the policy on the float SIMD GEMM kernels.
enum class InferenceDtype {
  F64, ///< Default: every forward pass in double.
  F32, ///< Greedy inference on the packed float policy.
};

/// The actor-critic pair.
class ActorCritic {
public:
  ActorCritic(const EnvConfig &Env, unsigned FeatureSize, NetConfig Net,
              uint64_t Seed);

  /// A sampled step: the action plus the data PPO stores.
  struct Sampled {
    AgentAction Action;
    double LogProb = 0.0;
    double Value = 0.0;
  };

  /// Samples an action (greedy = argmax for evaluation rollouts).
  Sampled act(const Observation &Obs, Rng &Rng, bool Greedy = false) const;

  /// Samples one action per observation through the batched policy
  /// path: one GEMM per network layer for the whole batch instead of
  /// one GEMV per observation. Rngs[i] is observation i's private
  /// stream; each row consumes only its own stream, in the same order
  /// as act(), so element i of the result is bitwise-identical to
  /// act(*Batch[i], *Rngs[i], Greedy) for any batch width.
  std::vector<Sampled> actBatch(const std::vector<const Observation *> &Batch,
                                const std::vector<Rng *> &Rngs,
                                bool Greedy = false) const;

  /// Re-evaluates a stored (observation, action) pair under the current
  /// parameters; all tensors are graph-alive for backward().
  struct Evaluation {
    nn::Tensor LogProb;
    nn::Tensor Entropy;
    nn::Tensor Value;
  };
  Evaluation evaluate(const Observation &Obs, const AgentAction &Action) const;

  /// Batched re-evaluation for the PPO update: per-row log-probs,
  /// entropies and values as [Bx1] graph-alive tensors, computed with
  /// one GEMM per layer for the whole minibatch. Heads inactive for a
  /// given row contribute exact zeros (and no gradient) to that row.
  struct BatchEvaluation {
    nn::Tensor LogProb; // B x 1
    nn::Tensor Entropy; // B x 1
    nn::Tensor Value;   // B x 1
  };
  BatchEvaluation
  evaluateBatch(const std::vector<const Observation *> &Obs,
                const std::vector<const AgentAction *> &Actions) const;

  std::vector<nn::Tensor> parameters() const;
  std::vector<nn::Tensor> policyParameters() const {
    return Policy.parameters();
  }

  const EnvConfig &getEnvConfig() const { return Env; }

  /// Selects the greedy-inference element type (default F64). F32 only
  /// changes how greedy act/actBatch calls compute their logits; every
  /// other path is untouched.
  void setInferenceDtype(InferenceDtype Dtype);
  InferenceDtype inferenceDtype() const { return Inference; }

  /// Drops the cached packed f32 policy. Must be called after any
  /// mutation of the policy parameters (optimizer step, checkpoint
  /// restore); the next greedy f32 query repacks from the fresh
  /// doubles. Cheap no-op when nothing is cached.
  ///
  /// Publication-safe against concurrent packedPolicy() rebuilds: the
  /// parameter version is bumped before the cached snapshot is
  /// dropped, and packedPolicy() re-reads the version after packing --
  /// a rebuild that raced this invalidation repacks from the fresh
  /// parameters instead of publishing the stale pack it just built.
  void invalidateInferenceCache();

  /// Monotone counter bumped by every invalidateInferenceCache() call
  /// (i.e. every parameter mutation). Exposed so a server can stamp
  /// responses with the policy version they were computed under and so
  /// tests can assert reloads were observed.
  uint64_t parameterVersion() const {
    return ParamVersion.load(std::memory_order_acquire);
  }

private:
  /// The greedy branch of actBatch on the packed float policy.
  std::vector<Sampled>
  actBatchGreedyF32(const std::vector<const Observation *> &Batch) const;

  /// The packed policy, building it on first use (thread-safe; returns
  /// a shared snapshot so a concurrent invalidation cannot free it
  /// mid-forward).
  std::shared_ptr<const PolicyNetF32> packedPolicy() const;

  EnvConfig Env;
  PolicyNet Policy;
  ValueNet Value;
  InferenceDtype Inference = InferenceDtype::F64;
  /// Parameter version: bumped (release) by invalidateInferenceCache
  /// after the parameters changed, read (acquire) by packedPolicy
  /// before and after packing. Starts at 1 so a PackedVersion of 0
  /// always reads as stale.
  mutable std::atomic<uint64_t> ParamVersion{1};
  mutable std::mutex PackLock;
  mutable std::shared_ptr<const PolicyNetF32> Packed;
  /// The ParamVersion the cached pack was built from (guarded by
  /// PackLock).
  mutable uint64_t PackedVersion = 0;
};

} // namespace mlirrl

#endif // MLIRRL_RL_AGENT_H
