//===- Agent.h - Actor-critic agent ------------------------------*- C++-*-===//
///
/// \file
/// The actor-critic agent (Sec. V): sampling actions from the policy
/// heads under the environment's masks, and re-evaluating stored actions
/// during PPO updates (log-probability, entropy, value). The
/// multi-discrete log-probability of a step is the sum over its active
/// heads.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_RL_AGENT_H
#define MLIRRL_RL_AGENT_H

#include "rl/PolicyNet.h"

namespace mlirrl {

/// The actor-critic pair.
class ActorCritic {
public:
  ActorCritic(const EnvConfig &Env, unsigned FeatureSize, NetConfig Net,
              uint64_t Seed);

  /// A sampled step: the action plus the data PPO stores.
  struct Sampled {
    AgentAction Action;
    double LogProb = 0.0;
    double Value = 0.0;
  };

  /// Samples an action (greedy = argmax for evaluation rollouts).
  Sampled act(const Observation &Obs, Rng &Rng, bool Greedy = false) const;

  /// Re-evaluates a stored (observation, action) pair under the current
  /// parameters; all tensors are graph-alive for backward().
  struct Evaluation {
    nn::Tensor LogProb;
    nn::Tensor Entropy;
    nn::Tensor Value;
  };
  Evaluation evaluate(const Observation &Obs, const AgentAction &Action) const;

  std::vector<nn::Tensor> parameters() const;
  std::vector<nn::Tensor> policyParameters() const {
    return Policy.parameters();
  }

  const EnvConfig &getEnvConfig() const { return Env; }

private:
  /// Builds the distributions for the active heads of (Obs, Action) and
  /// folds log-probs/entropies; shared by act (sampling variant) and
  /// evaluate.
  Evaluation evaluateWithAction(const Observation &Obs,
                                AgentAction &Action, Rng *SampleRng,
                                bool Greedy) const;

  EnvConfig Env;
  PolicyNet Policy;
  ValueNet Value;
};

} // namespace mlirrl

#endif // MLIRRL_RL_AGENT_H
