//===- Ppo.h - Proximal Policy Optimization ----------------------*- C++-*-===//
///
/// \file
/// The PPO trainer (Sec. VII-A5): clipped surrogate objective
/// (clip = 0.2), value loss coefficient 0.5, entropy coefficient 0.01,
/// learning rate 1e-3, gamma = 1.0, GAE lambda = 0.95, minibatches of 32
/// and 4 update epochs per iteration. One training iteration collects
/// trajectories from a batch of code samples (64 in the paper) and runs
/// the updates.
///
/// Batching is the default shape of the loop: episodes are collected
/// through vectorized environments (BatchWidth episodes advance in
/// lockstep, one policy GEMM per step) and the update re-evaluates each
/// minibatch through the batched agent path (one GEMM per layer per
/// minibatch instead of one GEMV per sample). Both are
/// bitwise-deterministic for a fixed seed regardless of batch width,
/// collection thread count and update thread count.
///
/// Both the collection path and the greedy rollout (evaluate) step
/// environments that price rewards and build observations through the
/// per-episode ScheduleState transaction layer: each action re-prices
/// and re-featurizes only the op nests it dirtied, which is what keeps
/// Immediate-mode reward O(1) per action instead of O(module). The
/// incremental path is bitwise-identical to the from-scratch oracle
/// (tests/rl/DeterminismMatrixTest sweeps the pair).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_RL_PPO_H
#define MLIRRL_RL_PPO_H

#include "nn/Optimizer.h"
#include "perf/Evaluator.h"
#include "rl/Agent.h"
#include "rl/RolloutBuffer.h"
#include "rl/RolloutEngine.h"
#include "support/Error.h"
#include "support/ThreadPool.h"

#include <memory>

namespace mlirrl {

class ShardedDataset;

namespace serialize {
class ArchiveWriter;
class ArchiveReader;
} // namespace serialize

/// PPO hyperparameters (defaults = the paper's).
struct PpoConfig {
  double LearningRate = 1e-3;
  double ClipRange = 0.2;
  double Gamma = 1.0;
  double Lambda = 0.95;
  double ValueCoef = 0.5;
  double EntropyCoef = 0.01;
  unsigned UpdateEpochs = 4;
  unsigned MinibatchSize = 32;
  unsigned SamplesPerIteration = 64;
  double MaxGradNorm = 0.5;
  uint64_t Seed = 7;
  /// Episodes advanced in lockstep per vectorized-environment group
  /// (the policy batch width during collection). Episode RNG streams
  /// are keyed by the global sample index, so every width produces
  /// bitwise-identical rollouts.
  unsigned BatchWidth = 8;
  /// Threads collecting episode groups per iteration (0 = one per
  /// hardware thread). Groups are independent, so every thread count
  /// produces bitwise-identical rollouts.
  unsigned CollectThreads = 1;
  /// Threads the update's minibatch GEMMs are partitioned across
  /// (0 = one per hardware thread). Row partitioning preserves each
  /// output element's accumulation order, so every thread count
  /// produces bitwise-identical updates.
  unsigned UpdateThreads = 1;
};

/// Per-iteration training statistics.
struct PpoIterationStats {
  double MeanEpisodeReward = 0.0;
  /// Geometric-mean speedup of the iteration's episodes.
  double MeanSpeedup = 0.0;
  double PolicyLoss = 0.0;
  double ValueLoss = 0.0;
  double Entropy = 0.0;
  unsigned StepsCollected = 0;
  /// Accumulated simulated program-execution time spent on rewards (the
  /// Fig. 7 wall-clock axis).
  double MeasurementSeconds = 0.0;
  /// Loop nests materialized by the iteration's environments (via the
  /// ScheduleState transaction layer). Deterministic per seed; with
  /// incremental stepping on it stays near one nest per effective
  /// action instead of ops x steps.
  uint64_t NestMaterializations = 0;
};

/// The trainer.
class PpoTrainer {
public:
  /// Rewards are measured through \p Eval (a Runner, a
  /// CostModelEvaluator, or a CachingEvaluator over either); it must be
  /// thread-safe and outlive the trainer. All collector threads and all
  /// VecEnv groups share this one instance, so a lock-striped
  /// CachingEvaluator (the MlirRl default) lets concurrent episodes
  /// reuse each other's memoized prices without a global lock.
  PpoTrainer(ActorCritic &Agent, Evaluator &Eval, PpoConfig Config);

  /// Runs one iteration: collects one episode per sample drawn from
  /// \p Dataset (cycling), then performs the PPO updates.
  PpoIterationStats trainIteration(const std::vector<Module> &Dataset);

  /// Streaming variant: draws this iteration's samples from \p Stream
  /// (which owns the dataset cursor; checkpoints record it so streamed
  /// trainings resume mid-epoch).
  PpoIterationStats trainIteration(ShardedDataset &Stream);

  /// Greedy evaluation: optimizes \p Sample with argmax actions and
  /// returns the achieved speedup (and the schedule through \p Out).
  double evaluate(const Module &Sample, ModuleSchedule *Out = nullptr);

  const PpoConfig &getConfig() const { return Config; }
  Rng &rng() { return SampleRng; }

  /// The optimizer's serializable state (checkpoint tests compare it
  /// across the save/load seam).
  nn::Adam::State optimizerState() const { return Optimizer.getState(); }

  /// Completed trainIteration calls since construction (restored by
  /// loadCheckpoint, so resumed loops know where to continue).
  uint64_t iterationsDone() const { return IterationsDone; }
  /// The RNG stream key the next collected episode will use.
  uint64_t episodeCounter() const { return EpisodeCounter; }

  /// Checkpointing (implemented in rl/Checkpoint.cpp): saveState
  /// serializes every piece of trainer state — agent parameters, Adam
  /// moments and step count, the sample RNG stream, the episode/dataset
  /// cursors, the PPO configuration and the rollout buffer — such that
  /// train(N) == train(k); save; load; train(N-k) bitwise. (The buffer
  /// is snapshotted for completeness; iteration-boundary resume never
  /// reads it back, since each iteration re-collects from scratch — it
  /// is the seam a future mid-iteration checkpoint would build on.)
  /// restoreState validates the whole archive (CRCs, shapes) before
  /// mutating anything: on failure the trainer is untouched.
  void saveState(serialize::ArchiveWriter &Writer) const;
  Expected<bool> restoreState(const serialize::ArchiveReader &Reader);

private:
  /// Rolls one lockstep group of episodes through the shared
  /// RolloutEngine, one RNG stream per episode derived from
  /// (Config.Seed, StreamKeys[i]) -- thread-safe: touches no trainer
  /// state besides the read-only agent and the evaluator.
  std::vector<RolloutEngine::Episode>
  collectGroup(const std::vector<const Module *> &Samples,
               const std::vector<uint64_t> &StreamKeys) const;

  /// The shared iteration core: collects one episode per entry of
  /// \p Samples (stream keys drawn from EpisodeCounter), then updates.
  PpoIterationStats runIteration(const std::vector<const Module *> &Samples);

  void update(PpoIterationStats &Stats);

  /// The pool used for group collection (created on first use; nullptr
  /// while CollectThreads == 1).
  ThreadPool *collectionPool();
  /// The pool the update's GEMMs are partitioned across (created on
  /// first use; nullptr while UpdateThreads == 1).
  ThreadPool *updatePool();

  ActorCritic &Agent;
  Evaluator &Eval;
  /// The one rollout implementation (collection samples through it,
  /// evaluate() runs it greedily; the server and the baselines drive
  /// the same engine type over the same evaluator seam).
  RolloutEngine Engine;
  PpoConfig Config;
  nn::Adam Optimizer;
  Rng SampleRng;
  RolloutBuffer Buffer;
  size_t DatasetCursor = 0;
  /// Global episode counter: the RNG stream key of the next episode.
  uint64_t EpisodeCounter = 0;
  uint64_t IterationsDone = 0;
  std::unique_ptr<ThreadPool> Pool;
  std::unique_ptr<ThreadPool> GemmPool;
};

} // namespace mlirrl

#endif // MLIRRL_RL_PPO_H
